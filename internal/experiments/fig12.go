package experiments

import (
	"fmt"

	"metadataflow/internal/workload/synthetic"
)

// topologyFactors returns (outer, inner) branching factors with a constant
// product: 120 branches total (§6.3 uses the highly composite 120), or 12
// in quick mode.
func topologyFactors(o Options) [][2]int {
	if o.Quick {
		return [][2]int{{2, 6}, {3, 4}, {6, 2}}
	}
	return [][2]int{{2, 60}, {3, 40}, {4, 30}, {6, 20}, {10, 12}, {20, 6}, {40, 3}, {60, 2}}
}

func topologyParams(o Options, outer, inner int, seed int64) synthetic.Params {
	p := synthetic.Defaults()
	p.Seed = seed
	p.OuterBranches = outer
	p.InnerBranches = inner
	p.Rows = 1200
	p.VirtualBytes = 16 * gb
	if o.Quick {
		p.Rows = 500
	}
	return p
}

// Fig12 regenerates the topology experiment: completion time as the outer
// branching factor |B1| grows while |B1 × B2| stays fixed. Incremental
// choose evaluation helps most when the inner factor is high (datasets are
// discarded early); AMM helps most when the outer factor is high (the
// explore input is reused more often).
func Fig12(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig12",
		Title:  "Completion time vs outer branching factor (|B1×B2| fixed)",
		XLabel: "|B1|",
		Unit:   "virtual seconds",
	}
	for _, v := range policyVariants() {
		t.Columns = append(t.Columns, v.name)
	}
	seeds := o.seeds()
	for _, f := range topologyFactors(o) {
		f := f
		row := Row{X: fmt.Sprintf("%d", f[0])}
		for _, v := range policyVariants() {
			v := v
			sum, err := summarize(o, seeds, func(seed int64) (float64, error) {
				res, err := runVariant(topologyParams(o, f[0], f[1], seed), clusterConfig(8, 6*gb), v)
				if err != nil {
					return 0, err
				}
				return res.CompletionTime().Seconds(), nil
			})
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, sum)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig15 regenerates the memory-hit-ratio companion of Fig12.
func Fig15(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig15",
		Title:  "Memory hit ratio vs outer branching factor (|B1×B2| fixed)",
		XLabel: "|B1|",
		Unit:   "ratio",
	}
	for _, v := range policyVariants() {
		t.Columns = append(t.Columns, v.name)
	}
	seeds := o.seeds()
	for _, f := range topologyFactors(o) {
		f := f
		row := Row{X: fmt.Sprintf("%d", f[0])}
		for _, v := range policyVariants() {
			v := v
			sum, err := summarize(o, seeds, func(seed int64) (float64, error) {
				res, err := runVariant(topologyParams(o, f[0], f[1], seed), clusterConfig(8, 6*gb), v)
				if err != nil {
					return 0, err
				}
				return res.Metrics.Mem.HitRatio(), nil
			})
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, sum)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig16 regenerates the CPU-cost experiment: completion time relative to
// the LRU baseline as the per-item processing cost grows. As the job
// becomes compute-bound, the I/O savings of AMM and incremental evaluation
// matter less and the curves converge towards 1.
func Fig16(o Options) (*Table, error) {
	t := &Table{
		ID:      "fig16",
		Title:   "Relative completion time vs processing cost (normalised to LRU)",
		XLabel:  "ops/item",
		Unit:    "x of LRU",
		Columns: []string{"AMM", "LRU+incremental", "AMM+incremental"},
	}
	costs := []int{1, 4, 16, 64, 256}
	if o.Quick {
		costs = []int{1, 64}
	}
	seeds := o.seeds()
	for _, c := range costs {
		c := c
		row := Row{X: fmt.Sprintf("%d", c)}
		params := func(seed int64) synthetic.Params {
			p := synthetic.Defaults()
			p.Seed = seed
			p.OuterBranches, p.InnerBranches = 5, 5
			p.OpsPerItem = c
			p.Rows = 1200
			p.VirtualBytes = 16 * gb
			if o.Quick {
				p.Rows = 500
			}
			return p
		}
		for _, v := range policyVariants()[1:] { // AMM, LRU+inc, AMM+inc
			v := v
			sum, err := summarize(o, seeds, func(seed int64) (float64, error) {
				base, err := runVariant(params(seed), clusterConfig(8, 6*gb), policyVariants()[0])
				if err != nil {
					return 0, err
				}
				res, err := runVariant(params(seed), clusterConfig(8, 6*gb), v)
				if err != nil {
					return 0, err
				}
				return (res.CompletionTime() / base.CompletionTime()).Seconds(), nil
			})
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, sum)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func memSizes(o Options) []int64 {
	if o.Quick {
		return []int64{2, 24}
	}
	return []int64{1, 2, 4, 6, 8, 12, 16, 24}
}

func memSweepParams(o Options, seed int64) synthetic.Params {
	p := synthetic.Defaults()
	p.Seed = seed
	p.OuterBranches, p.InnerBranches = 5, 5
	p.Rows = 1200
	p.VirtualBytes = 16 * gb
	if o.Quick {
		p.Rows = 500
	}
	return p
}

// Fig17 regenerates the memory-availability experiment: completion time
// relative to LRU as per-worker memory grows with a fixed input. With
// little memory AMM+incremental wins clearly; as everything fits, all
// approaches converge.
func Fig17(o Options) (*Table, error) {
	t := &Table{
		ID:      "fig17",
		Title:   "Relative completion time vs memory per worker (normalised to LRU)",
		XLabel:  "GB/worker",
		Unit:    "x of LRU",
		Columns: []string{"AMM", "LRU+incremental", "AMM+incremental"},
	}
	seeds := o.seeds()
	for _, m := range memSizes(o) {
		m := m
		row := Row{X: fmt.Sprintf("%d", m)}
		for _, v := range policyVariants()[1:] {
			v := v
			sum, err := summarize(o, seeds, func(seed int64) (float64, error) {
				base, err := runVariant(memSweepParams(o, seed), clusterConfig(8, m*gb), policyVariants()[0])
				if err != nil {
					return 0, err
				}
				res, err := runVariant(memSweepParams(o, seed), clusterConfig(8, m*gb), v)
				if err != nil {
					return 0, err
				}
				return (res.CompletionTime() / base.CompletionTime()).Seconds(), nil
			})
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, sum)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig18 regenerates the memory-hit-ratio companion of Fig17: all four
// ablations, converging to 1 as memory grows, with LRU needing the most
// memory to get there.
func Fig18(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig18",
		Title:  "Memory hit ratio vs memory per worker",
		XLabel: "GB/worker",
		Unit:   "ratio",
	}
	for _, v := range policyVariants() {
		t.Columns = append(t.Columns, v.name)
	}
	seeds := o.seeds()
	for _, m := range memSizes(o) {
		m := m
		row := Row{X: fmt.Sprintf("%d", m)}
		for _, v := range policyVariants() {
			v := v
			sum, err := summarize(o, seeds, func(seed int64) (float64, error) {
				res, err := runVariant(memSweepParams(o, seed), clusterConfig(8, m*gb), v)
				if err != nil {
					return 0, err
				}
				return res.Metrics.Mem.HitRatio(), nil
			})
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, sum)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
