package experiments

import (
	"metadataflow/internal/graph"
	"metadataflow/internal/workload/dnn"
)

func fig5Params(o Options, seed int64) dnn.Params {
	p := dnn.Defaults()
	p.Seed = seed
	if o.Quick {
		p.Train, p.Val, p.Dims, p.Hidden = 200, 80, 16, 12
		p.Inits = dnn.Inits()[:4]
		p.LearningRates = []float64{0.001, 0.01}
		p.Momenta = []float64{0.5, 0.9}
	}
	return p
}

// Fig5 regenerates the deep learning completion-time comparison: four
// exploration strategies (initial weights only, hyper-parameters only,
// exhaustive cross product, early choose) under sequential, 4-parallel,
// 8-parallel and MDF execution.
func Fig5(o Options) (*Table, error) {
	t := &Table{
		ID:      "fig5",
		Title:   "Deep learning job completion time",
		XLabel:  "explorables",
		Unit:    "virtual seconds",
		Columns: []string{"sequential", "4-parallel", "8-parallel", "MDF"},
	}
	ccfg := clusterConfig(8, 10*gb)
	seeds := o.seeds()

	type builder func(dnn.Params) (*graph.Graph, error)
	configs := []struct {
		name  string
		build builder
		// earlyPhases, when set, models the user's two-phase orchestration
		// for the baselines (weights first, then hyper-parameters).
		earlyPhases []builder
	}{
		{name: "W", build: dnn.BuildWeightsOnlyMDF},
		{name: "RxM", build: dnn.BuildHyperOnlyMDF},
		{name: "WxRxM (exhaustive)", build: dnn.BuildExhaustiveMDF},
		{name: "W->RxM (early choose)", build: dnn.BuildEarlyChooseMDF,
			earlyPhases: []builder{dnn.BuildWeightsOnlyMDF, dnn.BuildHyperOnlyMDF}},
	}
	for _, cfg := range configs {
		row := Row{X: cfg.name}
		baselineBuilders := []builder{cfg.build}
		if cfg.earlyPhases != nil {
			baselineBuilders = cfg.earlyPhases
		}
		// Sequential and parallel baselines.
		for _, k := range []int{1, 4, 8} {
			k := k
			sum, err := summarize(o, seeds, func(seed int64) (float64, error) {
				var total float64
				for _, build := range baselineBuilders {
					g, err := build(fig5Params(o, seed))
					if err != nil {
						return 0, err
					}
					var ct float64
					if k == 1 {
						ct, err = seqRun(g, ccfg)
					} else {
						ct, err = parRun(g, k, ccfg)
					}
					if err != nil {
						return 0, err
					}
					total += ct
				}
				return total, nil
			})
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, sum)
		}
		// MDF execution of the single integrated job.
		sum, err := summarize(o, seeds, func(seed int64) (float64, error) {
			g, err := cfg.build(fig5Params(o, seed))
			if err != nil {
				return 0, err
			}
			res, err := mdfRun(g, ccfg)
			if err != nil {
				return 0, err
			}
			return res.CompletionTime().Seconds(), nil
		})
		if err != nil {
			return nil, err
		}
		row.Cells = append(row.Cells, sum)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
