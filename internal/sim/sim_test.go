package sim

import "testing"

func TestVTimeArithmetic(t *testing.T) {
	var a VTime = 1.5
	a += 2.5 // untyped constants interoperate
	if a != 4 {
		t.Fatalf("VTime sum = %v, want 4", a)
	}
	if a.Seconds() != 4.0 {
		t.Fatalf("Seconds() = %v, want 4.0", a.Seconds())
	}
	if max(VTime(1), VTime(2)) != 2 {
		t.Fatalf("builtin max should work on VTime")
	}
}

func TestBytesHelpers(t *testing.T) {
	var b Bytes = 2_500_000
	if b.Int64() != 2500000 {
		t.Fatalf("Int64() = %d, want 2500000", b.Int64())
	}
	if b.MB() != 2.5 {
		t.Fatalf("MB() = %v, want 2.5", b.MB())
	}
	if (b + 500_000).MB() != 3.0 {
		t.Fatalf("Bytes addition broken")
	}
}
