// Package sim defines the named unit types for the simulator's two core
// quantities: virtual time and data volume.
//
// The cost model in internal/cluster mixes three kinds of numbers —
// virtual-time seconds, byte counts, and dimensionless throughput ratios.
// Before this package existed they were all raw float64/int64, so a swapped
// argument (a byte count where a duration belongs) compiled silently and
// skewed every downstream experiment. VTime and Bytes are distinct named
// types, which makes cross-unit arithmetic a compile error, and the
// unitsafety rule in internal/analysis enforces that exported simulator
// signatures use them and that conversions between them happen only inside
// the cluster cost model (division by a bandwidth is the one sanctioned
// bytes-to-seconds path).
//
// Both types are thin wrappers: VTime has the arithmetic of float64 and
// Bytes of int64, untyped constants interoperate (t += 1.5 works), and the
// conversions back to the raw representation are explicit methods so the
// analyzer can tell a sanctioned unwrap from an accidental unit mix.
package sim

// VTime is a point on (or span of) the simulator's virtual-time axis,
// measured in virtual seconds. It is NOT wall-clock time: the wallclock
// rule in internal/analysis bans time.Now from simulator packages, and all
// scheduling math advances VTime deterministically from the event loop.
type VTime float64

// Seconds unwraps t to a raw float64 for formatting, CSV output, and
// interop with packages outside the simulator core.
func (t VTime) Seconds() float64 { return float64(t) }

// Bytes is a virtual data volume in bytes — the unit of partition sizes,
// memory capacities, and transfer/spill accounting.
type Bytes int64

// Int64 unwraps b to a raw int64 for interop with the data plane
// (internal/dataset keeps raw int64 sizes) and for serialization.
func (b Bytes) Int64() int64 { return int64(b) }

// MB returns b in (decimal) megabytes. The workload cost knobs are
// expressed per MB (graph.Operator.CostPerMB), and routing the conversion
// through this method — rather than open-coded float64 casts — is the
// sanctioned way to derive a dimensionless magnitude from a byte count
// outside the cluster cost model.
func (b Bytes) MB() float64 { return float64(b) / 1e6 }
