// Package ckptstore is a content-addressed durable checkpoint store.
// Entries are keyed by the spec chain-prefix hash of the operator that
// produced the partition (internal/spec) plus the partition index, so
// the same intermediate result — across retries, restarts, branches, or
// separate jobs — lands at the same key. That is the on-disk substrate
// the restart path resumes from and the cross-run memo table (ROADMAP
// item 3) will sit on.
//
// Every entry is checksummed: the file is an 8-byte big-endian FNV-1a
// digest of the payload followed by the payload. Loads verify the
// digest and report any damage — torn writes, bit flips, truncation —
// as a miss, never as data: the engine falls back to lineage
// re-derivation exactly as it would for an absent checkpoint. Writes
// are atomic (temp file + rename), so a crash mid-Put leaves either the
// old entry or none.
package ckptstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"

	"metadataflow/internal/spec"
)

// Key addresses one durable partition: the chain-prefix hash of the
// producing operator and the partition index.
type Key struct {
	Chain spec.Hash
	Part  int
}

// filename is the entry's file name: chain hex, partition index.
func (k Key) filename() string { return fmt.Sprintf("%s-p%04d.ckpt", k.Chain, k.Part) }

func (k Key) String() string { return fmt.Sprintf("%s/p%d", k.Chain, k.Part) }

// MissError reports that an entry could not be loaded — absent or
// damaged. Callers treat both identically: re-derive from lineage.
type MissError struct {
	Key    Key
	Reason string
}

func (e *MissError) Error() string {
	return fmt.Sprintf("ckptstore: miss %s: %s", e.Key, e.Reason)
}

// IsMiss reports whether err is a load miss (absent or corrupt entry).
func IsMiss(err error) bool {
	var m *MissError
	return errors.As(err, &m)
}

// checksumLen prefixes every entry file.
const checksumLen = 8

// digest is the store's FNV-1a payload checksum.
func digest(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload) // fnv's Write cannot fail
	return h.Sum64()
}

// Store is a checkpoint directory. Open creates the directory; Close
// releases the handle. Safe for the service's single-writer step loop;
// concurrent readers are fine because writes are atomic renames.
type Store struct {
	dir  string
	open bool
}

// New prepares a store rooted at dir. No I/O happens until Open.
func New(dir string) *Store { return &Store{dir: dir} }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Open creates the store directory if needed.
func (s *Store) Open() error {
	if s.open {
		return fmt.Errorf("ckptstore: already open")
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	s.open = true
	return nil
}

// Close releases the store. Entries stay on disk.
func (s *Store) Close() error {
	s.open = false
	return nil
}

// Put durably writes payload at k, replacing any existing entry —
// including a damaged one, which is how a re-derived partition heals a
// corrupt checkpoint. The write is atomic: temp file, then rename.
func (s *Store) Put(k Key, payload []byte) error {
	if !s.open {
		return fmt.Errorf("ckptstore: put on closed store")
	}
	b := make([]byte, checksumLen+len(payload))
	binary.BigEndian.PutUint64(b[:checksumLen], digest(payload))
	copy(b[checksumLen:], payload)
	final := filepath.Join(s.dir, k.filename())
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// Get loads and verifies the entry at k. Absent, truncated, or
// checksum-failing entries return a *MissError; callers re-derive.
func (s *Store) Get(k Key) ([]byte, error) {
	b, err := os.ReadFile(filepath.Join(s.dir, k.filename()))
	if os.IsNotExist(err) {
		return nil, &MissError{Key: k, Reason: "absent"}
	}
	if err != nil {
		return nil, &MissError{Key: k, Reason: err.Error()}
	}
	if len(b) < checksumLen {
		return nil, &MissError{Key: k, Reason: fmt.Sprintf("truncated: %d bytes", len(b))}
	}
	payload := b[checksumLen:]
	if got, want := digest(payload), binary.BigEndian.Uint64(b[:checksumLen]); got != want {
		return nil, &MissError{Key: k, Reason: fmt.Sprintf("checksum mismatch: %016x, want %016x", got, want)}
	}
	return payload, nil
}

// Has reports whether a verified entry exists at k.
func (s *Store) Has(k Key) bool {
	_, err := s.Get(k)
	return err == nil
}

// Keys lists every entry key in sorted order (chain hash, then
// partition), including damaged entries — damage surfaces on Get.
func (s *Store) Keys() ([]Key, error) {
	ents, err := os.ReadDir(s.dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var keys []Key
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		var hex string
		var part int
		if _, err := fmt.Sscanf(e.Name(), "%16s-p%04d.ckpt", &hex, &part); err != nil {
			continue
		}
		var h spec.Hash
		if err := h.UnmarshalJSON([]byte(`"` + hex + `"`)); err != nil {
			continue
		}
		k := Key{Chain: h, Part: part}
		if k.filename() != e.Name() { // leftover temp files and strays
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Chain != keys[j].Chain {
			return keys[i].Chain < keys[j].Chain
		}
		return keys[i].Part < keys[j].Part
	})
	return keys, nil
}

// CorruptEntry flips one bit inside the payload of the entry at k — the
// load-time corruption injector behind faults.CkptFlip. bit is taken
// modulo the payload's bit width. Corrupting an absent entry is a no-op:
// the load will miss anyway.
func (s *Store) CorruptEntry(k Key, bit int) error {
	if bit < 0 {
		return fmt.Errorf("ckptstore: CorruptEntry bit %d", bit)
	}
	path := filepath.Join(s.dir, k.filename())
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(b) <= checksumLen {
		return nil // already unreadable
	}
	i := checksumLen*8 + bit%((len(b)-checksumLen)*8)
	b[i/8] ^= 1 << (i % 8)
	return os.WriteFile(path, b, 0o644)
}

// CorruptNth flips one bit inside the payload of the idx-th entry in
// Keys() order — the bit-flip fault injector for the crash-restart
// oracle. bit is taken modulo the payload's bit width.
func (s *Store) CorruptNth(idx, bit int) error {
	keys, err := s.Keys()
	if err != nil {
		return err
	}
	if idx < 0 || idx >= len(keys) {
		return fmt.Errorf("ckptstore: CorruptNth %d of %d entries", idx, len(keys))
	}
	if bit < 0 {
		return fmt.Errorf("ckptstore: CorruptNth bit %d", bit)
	}
	path := filepath.Join(s.dir, keys[idx].filename())
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) <= checksumLen {
		return fmt.Errorf("ckptstore: entry %s too short to corrupt", keys[idx])
	}
	k := checksumLen*8 + bit%((len(b)-checksumLen)*8)
	b[k/8] ^= 1 << (k % 8)
	return os.WriteFile(path, b, 0o644)
}
