package ckptstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"metadataflow/internal/spec"
)

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s := New(dir)
	if err := s.Open(); err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openStore(t, filepath.Join(t.TempDir(), "ckpt"))
	k := Key{Chain: spec.Hash(0xdeadbeefcafe0123), Part: 2}
	payload := []byte("rows: 1.5\x1f2.5\x1f")
	if err := s.Put(k, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get(k)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, want %q", got, payload)
	}
	if !s.Has(k) {
		t.Fatal("Has = false")
	}
}

func TestGetAbsentIsMiss(t *testing.T) {
	s := openStore(t, filepath.Join(t.TempDir(), "ckpt"))
	_, err := s.Get(Key{Chain: 1, Part: 0})
	if !IsMiss(err) {
		t.Fatalf("absent Get error %v, want miss", err)
	}
}

func TestCorruptionIsMissAndPutHeals(t *testing.T) {
	s := openStore(t, filepath.Join(t.TempDir(), "ckpt"))
	k := Key{Chain: spec.Hash(42), Part: 0}
	payload := []byte("some checkpoint payload bytes")
	if err := s.Put(k, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.CorruptNth(0, 13); err != nil {
		t.Fatalf("CorruptNth: %v", err)
	}
	if _, err := s.Get(k); !IsMiss(err) {
		t.Fatalf("corrupt Get error %v, want miss", err)
	}
	// A re-derived partition overwrites the damaged entry.
	if err := s.Put(k, payload); err != nil {
		t.Fatalf("Put over corrupt: %v", err)
	}
	if got, err := s.Get(k); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("healed Get = %q, %v", got, err)
	}
}

func TestTruncatedEntryIsMiss(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	s := openStore(t, dir)
	k := Key{Chain: spec.Hash(7), Part: 1}
	if err := s.Put(k, []byte("payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Torn write: the file holds only part of the checksum header.
	path := filepath.Join(dir, k.filename())
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(k); !IsMiss(err) {
		t.Fatalf("truncated Get error %v, want miss", err)
	}
}

func TestKeysSortedAndSkipsStrays(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	s := openStore(t, dir)
	want := []Key{
		{Chain: spec.Hash(0x10), Part: 0},
		{Chain: spec.Hash(0x10), Part: 3},
		{Chain: spec.Hash(0xff), Part: 1},
	}
	// Put in shuffled order; Keys must come back sorted.
	for _, i := range []int{2, 0, 1} {
		if err := s.Put(want[i], []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for _, stray := range []string{"notes.txt", want[0].filename() + ".tmp"} {
		if err := os.WriteFile(filepath.Join(dir, stray), []byte("y"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Keys()
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEmptyPayload(t *testing.T) {
	s := openStore(t, filepath.Join(t.TempDir(), "ckpt"))
	k := Key{Chain: spec.Hash(3), Part: 0}
	if err := s.Put(k, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get(k)
	if err != nil || len(got) != 0 {
		t.Fatalf("Get = %q, %v", got, err)
	}
}
