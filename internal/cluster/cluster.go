// Package cluster simulates the compute cluster of §2.1: a set of worker
// nodes with finite memory and unbounded disk, connected to a master. The
// simulation is a deterministic virtual-time model: operators run for real
// over in-process data, but every compute and I/O action is charged virtual
// seconds from a calibrated cost model, and each node serialises work on two
// resource timelines (CPU and disk). Contending jobs naturally overlap I/O
// and compute, which reproduces the behaviour of parallel job execution in
// §6.1 without wall-clock measurement noise.
package cluster

import "fmt"

// Config describes the simulated hardware.
type Config struct {
	// Workers is the number of worker nodes (the paper uses up to 12).
	Workers int
	// MemPerWorker is each worker's dataset memory budget in bytes.
	MemPerWorker int64
	// DiskReadBW and DiskWriteBW are disk bandwidths in bytes/second.
	DiskReadBW  float64
	DiskWriteBW float64
	// MemReadBW and MemWriteBW are memory bandwidths in bytes/second.
	MemReadBW  float64
	MemWriteBW float64
	// NetBW is the per-node network bandwidth in bytes/second; wide
	// dependencies shuffle data across it (the paper's testbed has 1 Gbps
	// Ethernet).
	NetBW float64
	// ComputeScale multiplies every operator compute cost; 1.0 models the
	// paper's quad-core Xeon workers.
	ComputeScale float64
}

// DefaultConfig mirrors the paper's testbed: 8 active workers (of 12),
// 10 GB of dataset memory per worker (§6.2), commodity disk and DRAM
// bandwidths.
func DefaultConfig() Config {
	return Config{
		Workers:      8,
		MemPerWorker: 10 << 30,
		DiskReadBW:   150e6,
		DiskWriteBW:  100e6,
		MemReadBW:    5e9,
		MemWriteBW:   3e9,
		NetBW:        125e6, // 1 Gbps
		ComputeScale: 1.0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("cluster: need at least one worker, have %d", c.Workers)
	}
	if c.MemPerWorker <= 0 {
		return fmt.Errorf("cluster: non-positive memory per worker")
	}
	for _, bw := range []float64{c.DiskReadBW, c.DiskWriteBW, c.MemReadBW, c.MemWriteBW, c.NetBW} {
		if bw <= 0 {
			return fmt.Errorf("cluster: non-positive bandwidth")
		}
	}
	if c.ComputeScale <= 0 {
		return fmt.Errorf("cluster: non-positive compute scale")
	}
	return nil
}

// Alpha is the hardware ratio used by anticipatory memory management
// (§4.3): α = (w_d · r_m) / (w_m · r_d), where w/r are the times to write or
// read a fixed amount of data to/from disk (d) or memory (m).
func (c Config) Alpha() float64 {
	wd := 1 / c.DiskWriteBW
	rm := 1 / c.MemReadBW
	wm := 1 / c.MemWriteBW
	rd := 1 / c.DiskReadBW
	return (wd * rm) / (wm * rd)
}

// DiskReadSec returns the virtual seconds to read bytes from disk.
func (c Config) DiskReadSec(bytes int64) float64 { return float64(bytes) / c.DiskReadBW }

// DiskWriteSec returns the virtual seconds to write bytes to disk.
func (c Config) DiskWriteSec(bytes int64) float64 { return float64(bytes) / c.DiskWriteBW }

// MemReadSec returns the virtual seconds to read bytes from memory.
func (c Config) MemReadSec(bytes int64) float64 { return float64(bytes) / c.MemReadBW }

// MemWriteSec returns the virtual seconds to write bytes to memory.
func (c Config) MemWriteSec(bytes int64) float64 { return float64(bytes) / c.MemWriteBW }

// NetSec returns the virtual seconds to move bytes over one node's link.
func (c Config) NetSec(bytes int64) float64 { return float64(bytes) / c.NetBW }

// Node is a simulated worker with three serial resources: a CPU, a disk and
// a network link. Requests on a resource are served in arrival order.
type Node struct {
	// ID is the worker index.
	ID int
	// SlowFactor scales every duration on this node; > 1 models a
	// straggler (§5). Zero means 1.
	SlowFactor float64

	cpuFree  float64
	diskFree float64
	netFree  float64
}

func (n *Node) scale(dur float64) float64 {
	if n.SlowFactor > 1 {
		return dur * n.SlowFactor
	}
	return dur
}

// CPU occupies the node's CPU for dur virtual seconds starting no earlier
// than ready, returning the finish time.
func (n *Node) CPU(ready, dur float64) float64 {
	start := max(ready, n.cpuFree)
	n.cpuFree = start + n.scale(dur)
	return n.cpuFree
}

// Disk occupies the node's disk for dur virtual seconds starting no earlier
// than ready, returning the finish time.
func (n *Node) Disk(ready, dur float64) float64 {
	start := max(ready, n.diskFree)
	n.diskFree = start + n.scale(dur)
	return n.diskFree
}

// Net occupies the node's network link for dur virtual seconds starting no
// earlier than ready, returning the finish time.
func (n *Node) Net(ready, dur float64) float64 {
	start := max(ready, n.netFree)
	n.netFree = start + n.scale(dur)
	return n.netFree
}

// FreeAt returns the times at which the node's CPU and disk become free.
func (n *Node) FreeAt() (cpu, disk float64) { return n.cpuFree, n.diskFree }

// Cluster is a set of simulated worker nodes sharing a configuration.
type Cluster struct {
	Config Config
	Nodes  []*Node
}

// New builds a cluster from the configuration.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{Config: cfg}
	for i := 0; i < cfg.Workers; i++ {
		c.Nodes = append(c.Nodes, &Node{ID: i})
	}
	return c, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Reset clears all resource timelines, returning the cluster to time zero.
func (c *Cluster) Reset() {
	for _, n := range c.Nodes {
		n.cpuFree, n.diskFree, n.netFree = 0, 0, 0
	}
}

// Now returns the maximum resource-free time across the cluster: the virtual
// time at which everything submitted so far has finished.
func (c *Cluster) Now() float64 {
	var t float64
	for _, n := range c.Nodes {
		t = max(t, n.cpuFree, n.diskFree, n.netFree)
	}
	return t
}

// NodeFor maps a partition index to a worker round-robin.
func (c *Cluster) NodeFor(part int) *Node { return c.Nodes[part%len(c.Nodes)] }
