// Package cluster simulates the compute cluster of §2.1: a set of worker
// nodes with finite memory and unbounded disk, connected to a master. The
// simulation is a deterministic virtual-time model: operators run for real
// over in-process data, but every compute and I/O action is charged virtual
// seconds from a calibrated cost model, and each node serialises work on two
// resource timelines (CPU and disk). Contending jobs naturally overlap I/O
// and compute, which reproduces the behaviour of parallel job execution in
// §6.1 without wall-clock measurement noise.
package cluster

import (
	"fmt"

	"metadataflow/internal/sim"
)

// Config describes the simulated hardware.
type Config struct {
	// Workers is the number of worker nodes (the paper uses up to 12).
	Workers int
	// MemPerWorker is each worker's dataset memory budget.
	MemPerWorker sim.Bytes
	// DiskReadBW and DiskWriteBW are disk bandwidths in bytes/second.
	DiskReadBW  float64
	DiskWriteBW float64
	// MemReadBW and MemWriteBW are memory bandwidths in bytes/second.
	MemReadBW  float64
	MemWriteBW float64
	// NetBW is the per-node network bandwidth in bytes/second; wide
	// dependencies shuffle data across it (the paper's testbed has 1 Gbps
	// Ethernet).
	NetBW float64
	// ComputeScale multiplies every operator compute cost; 1.0 models the
	// paper's quad-core Xeon workers.
	ComputeScale float64
}

// DefaultConfig mirrors the paper's testbed: 8 active workers (of 12),
// 10 GB of dataset memory per worker (§6.2), commodity disk and DRAM
// bandwidths.
func DefaultConfig() Config {
	return Config{
		Workers:      8,
		MemPerWorker: 10 << 30,
		DiskReadBW:   150e6,
		DiskWriteBW:  100e6,
		MemReadBW:    5e9,
		MemWriteBW:   3e9,
		NetBW:        125e6, // 1 Gbps
		ComputeScale: 1.0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Workers < 1 {
		return fmt.Errorf("cluster: need at least one worker, have %d", c.Workers)
	}
	if c.MemPerWorker <= 0 {
		return fmt.Errorf("cluster: non-positive memory per worker")
	}
	for _, bw := range []float64{c.DiskReadBW, c.DiskWriteBW, c.MemReadBW, c.MemWriteBW, c.NetBW} {
		if bw <= 0 {
			return fmt.Errorf("cluster: non-positive bandwidth")
		}
	}
	if c.ComputeScale <= 0 {
		return fmt.Errorf("cluster: non-positive compute scale")
	}
	return nil
}

// Alpha is the hardware ratio used by anticipatory memory management
// (§4.3): α = (w_d · r_m) / (w_m · r_d), where w/r are the times to write or
// read a fixed amount of data to/from disk (d) or memory (m).
func (c Config) Alpha() float64 {
	wd := 1 / c.DiskWriteBW
	rm := 1 / c.MemReadBW
	wm := 1 / c.MemWriteBW
	rd := 1 / c.DiskReadBW
	return (wd * rm) / (wm * rd)
}

// The XxxSec methods below are the cost model proper: the only sanctioned
// place where a byte count becomes virtual time (division by a bandwidth).
// The unitsafety rule in internal/analysis exempts this package and flags
// equivalent open-coded conversions anywhere else in the simulator.

// DiskReadSec returns the virtual time to read bytes from disk.
func (c Config) DiskReadSec(bytes sim.Bytes) sim.VTime {
	return sim.VTime(float64(bytes) / c.DiskReadBW)
}

// DiskWriteSec returns the virtual time to write bytes to disk.
func (c Config) DiskWriteSec(bytes sim.Bytes) sim.VTime {
	return sim.VTime(float64(bytes) / c.DiskWriteBW)
}

// MemReadSec returns the virtual time to read bytes from memory.
func (c Config) MemReadSec(bytes sim.Bytes) sim.VTime {
	return sim.VTime(float64(bytes) / c.MemReadBW)
}

// MemWriteSec returns the virtual time to write bytes to memory.
func (c Config) MemWriteSec(bytes sim.Bytes) sim.VTime {
	return sim.VTime(float64(bytes) / c.MemWriteBW)
}

// NetSec returns the virtual time to move bytes over one node's link.
func (c Config) NetSec(bytes sim.Bytes) sim.VTime {
	return sim.VTime(float64(bytes) / c.NetBW)
}

// Observer receives resource-occupancy reports from node timelines: every
// interval a CPU, disk or network link is busy. The resource parameter is
// one of "cpu", "disk", "net". The interface is declared here (not in
// internal/obs) so the cluster stays dependency-free; obs.Recorder
// satisfies it structurally.
type Observer interface {
	ResourceBusy(node int, resource string, start, end sim.VTime)
}

// Node is a simulated worker with three serial resources: a CPU, a disk and
// a network link. Requests on a resource are served in arrival order.
type Node struct {
	// ID is the worker index.
	ID int
	// SlowFactor scales every duration on this node: > 1 models a
	// straggler (§5), a value in (0, 1) a faster-than-baseline node.
	// Zero means 1; negative values are rejected by Cluster.Validate.
	SlowFactor float64

	// faultSlow and faultDisk are transient fault-injected multipliers
	// (0 = none); they compose with SlowFactor and are cleared by Reset.
	faultSlow float64
	faultDisk float64
	// dead marks a permanently failed node; cleared by Reset.
	dead bool

	cpuFree  sim.VTime
	diskFree sim.VTime
	netFree  sim.VTime

	// observer, when non-nil, is told about every busy interval on the
	// node's resource timelines.
	observer Observer
}

func (n *Node) scale(dur sim.VTime) sim.VTime {
	f := 1.0
	if n.SlowFactor > 0 {
		f = n.SlowFactor
	}
	if n.faultSlow > 0 {
		f *= n.faultSlow
	}
	return sim.VTime(float64(dur) * f)
}

// EffectiveSlowFactor returns the combined duration multiplier currently in
// force on the node: the user-set SlowFactor composed with any transient
// fault-injected slowdown. Speculative straggler mitigation rebalances
// compute by its inverse.
func (n *Node) EffectiveSlowFactor() float64 { return n.scale(1).Seconds() }

// SetFaultFactors installs the transient fault-injected multipliers for the
// current virtual time; values <= 0 or exactly 1 mean "none".
func (n *Node) SetFaultFactors(slow, disk float64) {
	n.faultSlow, n.faultDisk = 0, 0
	if slow > 0 && slow != 1 {
		n.faultSlow = slow
	}
	if disk > 0 && disk != 1 {
		n.faultDisk = disk
	}
}

// FaultState exposes the node's fault-injected state: the transient
// slowdown and disk multipliers (1 when none) and whether the node is
// permanently dead.
func (n *Node) FaultState() (slow, disk float64, dead bool) {
	slow, disk = 1, 1
	if n.faultSlow > 0 {
		slow = n.faultSlow
	}
	if n.faultDisk > 0 {
		disk = n.faultDisk
	}
	return slow, disk, n.dead
}

// ClearFaults removes all fault-injected state: transient factors and the
// dead mark. The user-set SlowFactor is configuration, not a fault, and is
// preserved.
func (n *Node) ClearFaults() {
	n.faultSlow, n.faultDisk = 0, 0
	n.dead = false
}

// Alive reports whether the node has not been permanently failed.
func (n *Node) Alive() bool { return !n.dead }

// CPU occupies the node's CPU for dur virtual seconds starting no earlier
// than ready, returning the finish time.
func (n *Node) CPU(ready, dur sim.VTime) sim.VTime {
	start := max(ready, n.cpuFree)
	n.cpuFree = start + n.scale(dur)
	if n.observer != nil && n.cpuFree > start {
		n.observer.ResourceBusy(n.ID, "cpu", start, n.cpuFree)
	}
	return n.cpuFree
}

// Disk occupies the node's disk for dur virtual seconds starting no earlier
// than ready, returning the finish time. A fault-injected disk-bandwidth
// degradation stretches the duration on top of the node's slow factor.
func (n *Node) Disk(ready, dur sim.VTime) sim.VTime {
	start := max(ready, n.diskFree)
	d := n.scale(dur)
	if n.faultDisk > 0 {
		d = sim.VTime(float64(d) * n.faultDisk)
	}
	n.diskFree = start + d
	if n.observer != nil && n.diskFree > start {
		n.observer.ResourceBusy(n.ID, "disk", start, n.diskFree)
	}
	return n.diskFree
}

// Net occupies the node's network link for dur virtual seconds starting no
// earlier than ready, returning the finish time.
func (n *Node) Net(ready, dur sim.VTime) sim.VTime {
	start := max(ready, n.netFree)
	n.netFree = start + n.scale(dur)
	if n.observer != nil && n.netFree > start {
		n.observer.ResourceBusy(n.ID, "net", start, n.netFree)
	}
	return n.netFree
}

// FreeAt returns the times at which the node's CPU, disk and network link
// become free.
func (n *Node) FreeAt() (cpu, disk, net sim.VTime) { return n.cpuFree, n.diskFree, n.netFree }

// Cluster is a set of simulated worker nodes sharing a configuration.
type Cluster struct {
	Config Config
	Nodes  []*Node
}

// New builds a cluster from the configuration.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{Config: cfg}
	for i := 0; i < cfg.Workers; i++ {
		c.Nodes = append(c.Nodes, &Node{ID: i})
	}
	return c, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// SetObserver installs (or, with nil, removes) the resource observer on
// every node. Reset preserves it: the observer is telemetry plumbing, not
// per-run state.
func (c *Cluster) SetObserver(o Observer) {
	for _, n := range c.Nodes {
		n.observer = o
	}
}

// Reset clears all resource timelines and every fault-injected per-node
// state (transient factors, dead marks), returning the cluster to time zero
// so experiments can reuse it across seeds without leaking injected
// failures. User-set SlowFactor configuration is preserved.
func (c *Cluster) Reset() {
	for _, n := range c.Nodes {
		n.cpuFree, n.diskFree, n.netFree = 0, 0, 0
		n.ClearFaults()
	}
}

// Validate reports errors in the cluster's mutable per-node state: a
// non-positive explicit SlowFactor is rejected (zero means unset).
func (c *Cluster) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	for _, n := range c.Nodes {
		if n.SlowFactor < 0 {
			return fmt.Errorf("cluster: node %d has negative slow factor %g", n.ID, n.SlowFactor)
		}
	}
	return nil
}

// Kill permanently removes a node from the live set. It refuses to kill the
// last live worker.
func (c *Cluster) Kill(i int) error {
	if i < 0 || i >= len(c.Nodes) {
		return fmt.Errorf("cluster: kill of unknown node %d", i)
	}
	if c.NumLive() <= 1 && c.Nodes[i].Alive() {
		return fmt.Errorf("cluster: cannot kill the last live node %d", i)
	}
	c.Nodes[i].dead = true
	return nil
}

// Alive reports whether node i is in the live set.
func (c *Cluster) Alive(i int) bool { return i >= 0 && i < len(c.Nodes) && c.Nodes[i].Alive() }

// NumLive returns the number of live nodes.
func (c *Cluster) NumLive() int {
	n := 0
	for _, nd := range c.Nodes {
		if nd.Alive() {
			n++
		}
	}
	return n
}

// LiveIndices returns the indices of the live nodes in ascending order.
func (c *Cluster) LiveIndices() []int {
	out := make([]int, 0, len(c.Nodes))
	for i, nd := range c.Nodes {
		if nd.Alive() {
			out = append(out, i)
		}
	}
	return out
}

// Now returns the maximum resource-free time across the cluster: the virtual
// time at which everything submitted so far has finished.
func (c *Cluster) Now() sim.VTime {
	var t sim.VTime
	for _, n := range c.Nodes {
		t = max(t, n.cpuFree, n.diskFree, n.netFree)
	}
	return t
}

// NodeFor maps a partition index to a worker round-robin over the live set:
// the home node when it is alive, otherwise the partition's deterministic
// stand-in among the survivors.
func (c *Cluster) NodeFor(part int) *Node {
	n := c.Nodes[part%len(c.Nodes)]
	if n.Alive() {
		return n
	}
	live := c.LiveIndices()
	if len(live) == 0 {
		return n
	}
	return c.Nodes[live[part%len(live)]]
}
