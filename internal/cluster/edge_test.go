package cluster_test

// Edge cases of the cost model: validation must reject degenerate
// bandwidths (a zero bandwidth would turn every transfer into an infinite
// or NaN virtual duration), zero-byte transfers must cost exactly zero
// virtual time, and scaling compute up must never make a job finish
// earlier.

import (
	"testing"

	"metadataflow/internal/cluster"
	"metadataflow/internal/dataset"
	"metadataflow/internal/engine"
	"metadataflow/internal/mdf"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/sim"
)

func TestValidateRejectsNonPositiveBandwidths(t *testing.T) {
	mutations := []struct {
		name string
		set  func(*cluster.Config, float64)
	}{
		{"DiskReadBW", func(c *cluster.Config, v float64) { c.DiskReadBW = v }},
		{"DiskWriteBW", func(c *cluster.Config, v float64) { c.DiskWriteBW = v }},
		{"MemReadBW", func(c *cluster.Config, v float64) { c.MemReadBW = v }},
		{"MemWriteBW", func(c *cluster.Config, v float64) { c.MemWriteBW = v }},
		{"NetBW", func(c *cluster.Config, v float64) { c.NetBW = v }},
		{"ComputeScale", func(c *cluster.Config, v float64) { c.ComputeScale = v }},
	}
	for _, m := range mutations {
		for _, v := range []float64{0, -125e6} {
			cfg := cluster.DefaultConfig()
			m.set(&cfg, v)
			if err := cfg.Validate(); err == nil {
				t.Errorf("%s = %g accepted by Validate", m.name, v)
			}
		}
	}
	cfg := cluster.DefaultConfig()
	cfg.MemPerWorker = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative MemPerWorker accepted by Validate")
	}
}

func TestZeroByteTransfersCostZero(t *testing.T) {
	cfg := cluster.DefaultConfig()
	costs := map[string]sim.VTime{
		"DiskReadSec":  cfg.DiskReadSec(0),
		"DiskWriteSec": cfg.DiskWriteSec(0),
		"MemReadSec":   cfg.MemReadSec(0),
		"MemWriteSec":  cfg.MemWriteSec(0),
		"NetSec":       cfg.NetSec(0),
	}
	for name, got := range costs {
		if got != 0 {
			t.Errorf("%s(0) = %v, want exactly 0", name, got)
		}
	}
}

// runAtScale executes a small two-stage job on a cluster whose compute
// scale is the only varying parameter.
func runAtScale(t *testing.T, scale float64) sim.VTime {
	t.Helper()
	b := mdf.NewBuilder()
	rows := make([]dataset.Row, 400)
	for i := range rows {
		rows[i] = i
	}
	src := b.Source("src", mdf.SourceFunc(func() *dataset.Dataset {
		return dataset.FromRows("input", rows, 4, 1<<20)
	}), 0.001)
	src.Then("work", mdf.Identity("out"), 0.01)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cfg := cluster.DefaultConfig()
	cfg.Workers = 4
	cfg.ComputeScale = scale
	res, err := engine.Execute(g, engine.Options{
		Cluster:   cluster.MustNew(cfg),
		Policy:    memorymgr.LRU,
		Scheduler: scheduler.BFS(),
	})
	if err != nil {
		t.Fatalf("Execute(scale=%g): %v", scale, err)
	}
	return res.CompletionTime()
}

func TestComputeScaleMonotonic(t *testing.T) {
	scales := []float64{0.5, 1.0, 2.0, 4.0}
	times := make([]sim.VTime, len(scales))
	for i, s := range scales {
		times[i] = runAtScale(t, s)
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Errorf("completion time decreased when compute scale rose %gx -> %gx: %v -> %v",
				scales[i-1], scales[i], times[i-1], times[i])
		}
	}
	if times[len(times)-1] <= times[0] {
		t.Errorf("8x compute scale did not increase completion time: %v vs %v", times[0], times[len(times)-1])
	}
}
