package cluster

import (
	"math"
	"metadataflow/internal/sim"
	"testing"
	"testing/quick"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.MemPerWorker = 0 },
		func(c *Config) { c.DiskReadBW = 0 },
		func(c *Config) { c.DiskWriteBW = -1 },
		func(c *Config) { c.MemReadBW = 0 },
		func(c *Config) { c.MemWriteBW = 0 },
		func(c *Config) { c.ComputeScale = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestAlphaDefinition(t *testing.T) {
	cfg := DefaultConfig()
	// α = (w_d · r_m) / (w_m · r_d) with w/r as times per byte.
	want := ((1 / cfg.DiskWriteBW) * (1 / cfg.MemReadBW)) /
		((1 / cfg.MemWriteBW) * (1 / cfg.DiskReadBW))
	if got := cfg.Alpha(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("alpha = %v, want %v", got, want)
	}
	if cfg.Alpha() <= 0 {
		t.Fatal("alpha must be positive")
	}
}

func TestCostHelpers(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.DiskReadSec(sim.Bytes(cfg.DiskReadBW)); math.Abs(got.Seconds()-1) > 1e-9 {
		t.Errorf("DiskReadSec(one second of bytes) = %v, want 1", got)
	}
	if cfg.MemReadSec(1<<20) >= cfg.DiskReadSec(1<<20) {
		t.Error("memory reads must be faster than disk reads")
	}
}

func TestNodeResourceSerialization(t *testing.T) {
	n := &Node{}
	end1 := n.CPU(0, 10)
	end2 := n.CPU(0, 5) // requested at t=0 but CPU is busy until 10
	if end1 != 10 {
		t.Fatalf("first task end = %v, want 10", end1)
	}
	if end2 != 15 {
		t.Fatalf("second task must queue: end = %v, want 15", end2)
	}
	// Disk is an independent resource.
	if end := n.Disk(0, 3); end != 3 {
		t.Fatalf("disk end = %v, want 3 (independent of CPU)", end)
	}
}

func TestNodeIdleGap(t *testing.T) {
	n := &Node{}
	n.CPU(0, 2)
	if end := n.CPU(10, 1); end != 11 {
		t.Fatalf("task after idle gap: end = %v, want 11", end)
	}
}

func TestStragglerScaling(t *testing.T) {
	slow := &Node{SlowFactor: 3}
	if end := slow.CPU(0, 2); end != 6 {
		t.Fatalf("straggler end = %v, want 6", end)
	}
	normal := &Node{SlowFactor: 1}
	if end := normal.CPU(0, 2); end != 2 {
		t.Fatalf("unit slow factor end = %v, want 2", end)
	}
}

func TestClusterNewAndReset(t *testing.T) {
	c := MustNew(DefaultConfig())
	if len(c.Nodes) != DefaultConfig().Workers {
		t.Fatalf("nodes = %d, want %d", len(c.Nodes), DefaultConfig().Workers)
	}
	c.Nodes[0].CPU(0, 5)
	c.Nodes[1].Disk(0, 7)
	if c.Now() != 7 {
		t.Fatalf("Now = %v, want 7", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after Reset Now = %v, want 0", c.Now())
	}
}

func TestNodeForRoundRobin(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 3
	c := MustNew(cfg)
	if c.NodeFor(0) != c.Nodes[0] || c.NodeFor(4) != c.Nodes[1] {
		t.Fatal("NodeFor must map partitions round-robin")
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// Property: resource end times are monotone in request order and never
// before the ready time.
func TestNodeMonotonicityProperty(t *testing.T) {
	f := func(durs []uint16, readies []uint16) bool {
		n := &Node{}
		prevEnd := sim.VTime(0)
		for i, d := range durs {
			ready := sim.VTime(0)
			if i < len(readies) {
				ready = sim.VTime(readies[i]) / 16
			}
			dur := sim.VTime(d) / 256
			end := n.CPU(ready, dur)
			if end < ready+dur-1e-9 {
				return false
			}
			if end < prevEnd-1e-9 {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNetResourceIndependent(t *testing.T) {
	n := &Node{}
	n.CPU(0, 5)
	if end := n.Net(0, 2); end != 2 {
		t.Fatalf("net end = %v, want 2 (independent of CPU)", end)
	}
	if end := n.Net(0, 3); end != 5 {
		t.Fatalf("net must serialize: end = %v, want 5", end)
	}
}

func TestNetSec(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.NetSec(sim.Bytes(cfg.NetBW)); math.Abs(got.Seconds()-1) > 1e-9 {
		t.Fatalf("NetSec(one second of bytes) = %v, want 1", got)
	}
}

func TestWriteCostsAndFreeAt(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.DiskWriteSec(1<<20) <= 0 || cfg.MemWriteSec(1<<20) <= 0 {
		t.Fatal("non-positive write costs")
	}
	if cfg.MemWriteSec(1<<20) >= cfg.DiskWriteSec(1<<20) {
		t.Fatal("memory writes must be faster than disk writes")
	}
	n := &Node{}
	n.CPU(0, 3)
	n.Disk(0, 5)
	n.Net(0, 7)
	cpu, disk, net := n.FreeAt()
	if cpu != 3 || disk != 5 || net != 7 {
		t.Fatalf("FreeAt = (%v, %v, %v), want (3, 5, 7)", cpu, disk, net)
	}
}

func TestScaleHonoursFastAndSlowFactors(t *testing.T) {
	fast := &Node{SlowFactor: 0.5}
	if end := fast.CPU(0, 4); end != 2 {
		t.Fatalf("fast node end = %v, want 2 (factor 0.5 honoured)", end)
	}
	slow := &Node{SlowFactor: 2}
	if end := slow.CPU(0, 4); end != 8 {
		t.Fatalf("slow node end = %v, want 8", end)
	}
}

func TestValidateRejectsNegativeSlowFactor(t *testing.T) {
	c := MustNew(DefaultConfig())
	if err := c.Validate(); err != nil {
		t.Fatalf("clean cluster invalid: %v", err)
	}
	c.Nodes[2].SlowFactor = -1
	if err := c.Validate(); err == nil {
		t.Fatal("negative slow factor accepted")
	}
}

func TestFaultFactorsComposeAndClear(t *testing.T) {
	n := &Node{SlowFactor: 2}
	n.SetFaultFactors(3, 4)
	if end := n.CPU(0, 1); end != 6 {
		t.Fatalf("CPU with fault slowdown = %v, want 6 (2·3)", end)
	}
	if end := n.Disk(0, 1); end != 24 {
		t.Fatalf("disk with degradation = %v, want 24 (2·3·4)", end)
	}
	slow, disk, dead := n.FaultState()
	if slow != 3 || disk != 4 || dead {
		t.Fatalf("FaultState = (%v, %v, %v), want (3, 4, false)", slow, disk, dead)
	}
	n.ClearFaults()
	if end := n.CPU(24, 1); end != 26 {
		t.Fatalf("CPU after ClearFaults = %v, want 26 (only SlowFactor 2)", end)
	}
}

func TestKillAndLiveAwareNodeFor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 3
	c := MustNew(cfg)
	if err := c.Kill(1); err != nil {
		t.Fatalf("Kill(1): %v", err)
	}
	if c.Alive(1) || c.NumLive() != 2 {
		t.Fatalf("live set = %v after killing node 1", c.LiveIndices())
	}
	// Partition 1's home node is dead: it must map to a live stand-in.
	if got := c.NodeFor(1); got != c.Nodes[0] && got != c.Nodes[2] {
		t.Fatalf("NodeFor(1) = node %d, want a live node", got.ID)
	}
	// Live home nodes keep their partitions.
	if c.NodeFor(0) != c.Nodes[0] || c.NodeFor(2) != c.Nodes[2] {
		t.Fatal("NodeFor must keep live home nodes")
	}
	if err := c.Kill(0); err != nil {
		t.Fatalf("Kill(0): %v", err)
	}
	if err := c.Kill(2); err == nil {
		t.Fatal("killing the last live node must be refused")
	}
}

func TestResetClearsFaultState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 2
	c := MustNew(cfg)
	c.Nodes[0].SlowFactor = 4 // user configuration, not a fault
	c.Nodes[0].SetFaultFactors(2, 3)
	if err := c.Kill(1); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	c.Reset()
	if c.NumLive() != 2 {
		t.Fatal("Reset must revive permanently failed nodes")
	}
	slow, disk, dead := c.Nodes[0].FaultState()
	if slow != 1 || disk != 1 || dead {
		t.Fatalf("fault state leaked across Reset: (%v, %v, %v)", slow, disk, dead)
	}
	if c.Nodes[0].SlowFactor != 4 {
		t.Fatal("Reset must preserve the user-set SlowFactor")
	}
}
