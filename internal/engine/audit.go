package engine

import (
	"fmt"
	"sort"

	"metadataflow/internal/dataset"
)

// This file is the engine's self-audit surface: read-only invariant checks
// the chaos harness (internal/chaos) runs after every trial. They are
// methods on Run rather than harness-side code because they need the
// engine's private bookkeeping (placement overrides, live-dataset table,
// choose sessions) to state the invariants precisely.

// ChooseSelections returns the selected branch indices of every choose
// stage that ran, keyed by the stage's display label and sorted ascending.
// Stage labels are derived from per-graph operator IDs, so two runs built
// from the same spec are directly comparable even though raw dataset IDs
// (process-global counters) differ between them. The chaos equivalence
// oracle compares this map between the golden and the faulted run.
func (r *Run) ChooseSelections() map[string][]int {
	out := make(map[string][]int)
	for _, st := range r.plan.Stages {
		if !st.IsChoose() {
			continue
		}
		cs, ok := r.sessions[st.ID]
		if !ok {
			continue
		}
		sel := append([]int(nil), cs.session.Selected()...)
		sort.Ints(sel)
		out[st.String()] = sel
	}
	return out
}

// AuditLineage checks lineage closure over the allocators: every partition
// of every live dataset must be tracked at exactly the node the engine
// resolves it to (honouring rebalancing overrides), no partition may be
// duplicated on another node or stranded on a dead one, and no allocator
// may track a partition of a discarded dataset. Returns one message per
// violation, in deterministic order; nil means the books close.
func (r *Run) AuditLineage() []string {
	var out []string
	ids := make([]dataset.ID, 0, len(r.datasets))
	for id := range r.datasets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	expected := make(map[dataset.PartKey]int)
	for _, id := range ids {
		d := r.datasets[id]
		for i := range d.Parts {
			key := d.Key(i)
			home := r.nodeOf(key, i)
			expected[key] = home
			if !r.allocs[home].Known(key) {
				out = append(out, fmt.Sprintf("lost: partition %d of live dataset %q missing at its home node %d", i, d.Name, home))
			}
		}
	}
	for n, a := range r.allocs {
		for _, key := range a.Keys() {
			home, live := expected[key]
			switch {
			case !live:
				out = append(out, fmt.Sprintf("orphan: node %d tracks partition %d of discarded dataset %d", n, key.Index, key.Dataset))
			case home != n:
				out = append(out, fmt.Sprintf("duplicate: partition %d of dataset %d tracked at node %d but homed at node %d", key.Index, key.Dataset, n, home))
			}
		}
		if !r.opts.Cluster.Alive(n) && a.TrackedParts() > 0 {
			out = append(out, fmt.Sprintf("dead node %d still tracks %d partitions after evacuation", n, a.TrackedParts()))
		}
	}
	return out
}

// AuditAccounting checks allocator bookkeeping on every node: the resident
// byte counter must equal the sum of resident entry sizes and stay within
// the budget, and no partition may remain pinned once the run is over
// (every Pin matched by an Unpin or a Discard). Returns one message per
// violation; nil means the books balance.
func (r *Run) AuditAccounting() []string {
	var out []string
	for i, a := range r.allocs {
		if err := a.CheckAccounting(); err != nil {
			out = append(out, err.Error())
		}
		if n := a.PinnedParts(); n > 0 {
			out = append(out, fmt.Sprintf("node %d: %d partitions still pinned at end of run", i, n))
		}
	}
	return out
}
