package engine

import (
	"fmt"
	"sort"

	"metadataflow/internal/dataset"
	"metadataflow/internal/sim"
)

// The paper's execution model breaks a job into compute tasks — pairs of
// operators and data partitions executed by workers (§2.1). The engine
// accounts work per (stage, node); this file surfaces that accounting as an
// explicit task report for inspection and tooling.

// TaskReport summarises the work one worker performed for one stage.
type TaskReport struct {
	// Stage is the stage's display label.
	Stage string
	// Node is the worker index.
	Node int
	// Partitions is the number of input partitions the worker processed.
	Partitions int
	// InputBytes is the accounted input volume.
	InputBytes sim.Bytes
}

// TaskBreakdown derives the per-worker task list of a stage from its input
// datasets and the cluster's round-robin placement; the scheduler hands one
// such task per (operator chain, partition) to each worker.
func TaskBreakdown(stageLabel string, workers int, ins []*dataset.Dataset) []TaskReport {
	if workers < 1 {
		return nil
	}
	parts := make([]int, workers)
	bytes := make([]sim.Bytes, workers)
	for _, d := range ins {
		if d == nil {
			continue
		}
		for i, p := range d.Parts {
			n := i % workers
			parts[n]++
			bytes[n] += sim.Bytes(p.VirtualBytes)
		}
	}
	out := make([]TaskReport, 0, workers)
	for n := 0; n < workers; n++ {
		if parts[n] == 0 {
			continue
		}
		out = append(out, TaskReport{
			Stage: stageLabel, Node: n,
			Partitions: parts[n], InputBytes: bytes[n],
		})
	}
	return out
}

// SpillEntry reports the spill volume attributed to one dataset.
type SpillEntry struct {
	Dataset dataset.ID
	Bytes   sim.Bytes
}

// SpillReport aggregates per-dataset spill volumes across the run's
// allocators and returns the top offenders, largest first — the datasets a
// user would pin or restructure around.
func (r *Run) SpillReport(top int) []SpillEntry {
	byDataset := map[dataset.ID]sim.Bytes{}
	for _, a := range r.allocs {
		for key, bytes := range a.SpilledByPartition() {
			byDataset[key.Dataset] += bytes
		}
	}
	out := make([]SpillEntry, 0, len(byDataset))
	for id, b := range byDataset {
		out = append(out, SpillEntry{Dataset: id, Bytes: b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Dataset < out[j].Dataset
	})
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}

// String implements fmt.Stringer.
func (e SpillEntry) String() string {
	return fmt.Sprintf("dataset %d: %d bytes spilled", e.Dataset, e.Bytes)
}
