package engine_test

import (
	"bytes"
	"testing"

	"metadataflow/internal/engine"
	"metadataflow/internal/faults"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/obs"
	"metadataflow/internal/scheduler"
)

// recordedRun executes the filter MDF with a fresh recorder attached and
// returns the recorder and the run (for its snapshot).
func recordedRun(t *testing.T, opts engine.Options) (*obs.Recorder, *engine.Run) {
	t.Helper()
	rec := obs.NewRecorder()
	opts.Probe = rec
	g := buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator())
	plan, err := graph.BuildPlan(g)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	run, err := engine.NewRun(plan, opts, 0)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	if _, err := run.RunToCompletion(); err != nil {
		t.Fatalf("RunToCompletion: %v", err)
	}
	return rec, run
}

func TestProbeRecordsPerNodeSpans(t *testing.T) {
	rec, _ := recordedRun(t, engine.Options{
		Cluster:     testCluster(1 << 30),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
	})

	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	kinds := map[obs.Kind]bool{}
	workerSpan := false
	for _, s := range spans {
		kinds[s.Kind] = true
		if s.Node >= 0 && s.Kind == obs.KindStage {
			workerSpan = true
		}
		if s.End < s.Start {
			t.Errorf("span ends before it starts: %+v", s)
		}
	}
	for _, k := range []obs.Kind{obs.KindStage, obs.KindEval, obs.KindChoose, obs.KindCPU, obs.KindDisk} {
		if !kinds[k] {
			t.Errorf("missing %q spans (kinds: %v)", k, kinds)
		}
	}
	if !workerSpan {
		t.Error("no stage span attributed to a worker node")
	}

	counterNames := map[string]bool{}
	for _, c := range rec.CounterSamples() {
		counterNames[c.Name] = true
	}
	for _, name := range []string{"sched.queue_depth", "mem.resident_bytes"} {
		if !counterNames[name] {
			t.Errorf("missing counter track %q (have %v)", name, counterNames)
		}
	}

	decisionKinds := map[string]bool{}
	for _, d := range rec.Decisions() {
		decisionKinds[d.Component+"/"+d.Kind] = true
	}
	for _, k := range []string{"scheduler/pick", "engine/choose"} {
		if !decisionKinds[k] {
			t.Errorf("missing decision kind %q (have %v)", k, decisionKinds)
		}
	}
}

func TestChooseDecisionCarriesScores(t *testing.T) {
	rec, _ := recordedRun(t, engine.Options{
		Cluster:     testCluster(1 << 30),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
	})
	var choose *obs.Decision
	for _, d := range rec.Decisions() {
		if d.Component == "engine" && d.Kind == "choose" {
			choose = &d
			break
		}
	}
	if choose == nil {
		t.Fatal("no choose decision recorded")
	}
	// All three branches are scored under max-selection; exactly one wins.
	if len(choose.Candidates) != 3 {
		t.Fatalf("choose candidates = %d, want 3", len(choose.Candidates))
	}
	chosen := 0
	var bestScore float64
	var chosenScore float64
	for _, c := range choose.Candidates {
		if c.Score > bestScore {
			bestScore = c.Score
		}
		if c.Chosen {
			chosen++
			chosenScore = c.Score
		}
	}
	if chosen != 1 {
		t.Errorf("chosen candidates = %d, want 1", chosen)
	}
	if chosenScore != bestScore {
		t.Errorf("max selection chose score %g, best was %g", chosenScore, bestScore)
	}
}

func TestSnapshotSchema(t *testing.T) {
	_, run := recordedRun(t, engine.Options{
		Cluster:     testCluster(1 << 30),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
	})
	s := run.Snapshot()
	if s.Schema != obs.SnapshotSchema {
		t.Errorf("schema = %q, want %q", s.Schema, obs.SnapshotSchema)
	}
	if s.CompletionSec <= 0 {
		t.Errorf("completion = %v, want > 0", s.CompletionSec)
	}
	// Pin the counter name set: removing or renaming a counter is a schema
	// change and must bump obs.SnapshotSchema.
	want := []string{
		"engine.branches_discarded", "engine.branches_pruned", "engine.choose_evals",
		"engine.datasets_discarded", "engine.peak_live_datasets", "engine.stages_executed",
		"engine.stages_pruned",
		"faults.branches_quarantined", "faults.injected", "faults.node_crashes",
		"faults.panics_injected", "faults.partitions_rebalanced", "faults.partitions_rederived",
		"faults.rederived_bytes", "faults.retries", "faults.stages_reexecuted",
		"mem.bytes_from_disk", "mem.bytes_from_mem", "mem.checkpointed_bytes",
		"mem.checkpoints", "mem.evictions", "mem.hits", "mem.live_partitions",
		"mem.misses", "mem.peak_resident_bytes", "mem.pinned_partitions",
		"mem.spilled_bytes",
	}
	if len(s.Counters) != len(want) {
		t.Errorf("counters = %d, want %d", len(s.Counters), len(want))
	}
	for i, name := range want {
		if i >= len(s.Counters) {
			break
		}
		if s.Counters[i].Name != name {
			t.Errorf("counter[%d] = %q, want %q", i, s.Counters[i].Name, name)
		}
	}
	if v, ok := s.CounterValue("engine.choose_evals"); !ok || v != 3 {
		t.Errorf("engine.choose_evals = %v, %v; want 3", v, ok)
	}
	if len(s.Nodes) != 4 {
		t.Errorf("nodes = %d, want 4", len(s.Nodes))
	}
	for _, n := range s.Nodes {
		if !n.Alive {
			t.Errorf("node %d reported dead in a fault-free run", n.ID)
		}
		if n.CapacityBytes != 1<<30 {
			t.Errorf("node %d capacity = %d", n.ID, n.CapacityBytes)
		}
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Name != "engine.stage_duration" {
		t.Errorf("histograms = %+v", s.Histograms)
	}
	if s.Histograms[0].Count == 0 {
		t.Error("stage-duration histogram is empty")
	}
}

// TestEveryEvictionIsAudited pins the audit-log completeness invariant: the
// mem.evictions counter and the memorymgr/evict decision stream must agree,
// including spills of oversized partitions that bypass the policy entirely.
func TestEveryEvictionIsAudited(t *testing.T) {
	rec, run := recordedRun(t, engine.Options{
		Cluster:     testCluster(16 << 20), // small enough that partitions overflow
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
	})
	evictions := run.Result().Metrics.Mem.Evictions
	if evictions == 0 {
		t.Fatal("workload produced no evictions; shrink the test cluster")
	}
	audited := int64(0)
	for _, d := range rec.Decisions() {
		if d.Component == "memorymgr" && d.Kind == "evict" {
			audited++
		}
	}
	if audited != evictions {
		t.Errorf("%d evictions but %d evict decisions in the audit log", evictions, audited)
	}
}

// telemetryArtifacts runs a faulty job with a recorder and serializes all
// three artifacts: trace JSON, decision text, snapshot JSON.
func telemetryArtifacts(t *testing.T) []byte {
	t.Helper()
	plan := faults.MustGenerate(faults.GenConfig{Seed: 7, Workers: 4, Crashes: 2, EvalPanics: 1, MaxStage: 3})
	rec, run := recordedRun(t, engine.Options{
		Cluster:     testCluster(64 << 20), // small memory: forces evictions
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
		Faults:      plan,
	})
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := rec.WriteDecisions(&buf); err != nil {
		t.Fatalf("WriteDecisions: %v", err)
	}
	if err := run.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

func TestTelemetryByteIdenticalAcrossRuns(t *testing.T) {
	// The whole point of virtual-time telemetry: the same seed produces the
	// same bytes, even though dataset IDs (process-global counters) differ
	// between the two runs.
	a := telemetryArtifacts(t)
	b := telemetryArtifacts(t)
	if !bytes.Equal(a, b) {
		t.Errorf("telemetry artifacts differ between identical runs:\n--- run 1 ---\n%.2000s\n--- run 2 ---\n%.2000s", a, b)
	}
	if !bytes.Contains(a, []byte(`"crash"`)) {
		t.Error("snapshot fault history missing injected crashes")
	}
}
