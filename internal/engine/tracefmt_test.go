package engine

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixedTimeline is a hand-built timeline exercising every known kind plus
// one the formatter has never heard of.
func fixedTimeline() []StageEvent {
	return []StageEvent{
		{Kind: EventStage, Stage: "s0 load", Start: 0, End: 10},
		{Kind: EventChooseEval, Stage: "s1 choose[b0]", Start: 10, End: 14.5},
		{Kind: EventChooseEval, Stage: "s1 choose[b1]", Start: 10, End: 12},
		{Kind: EventPruned, Stage: "s2 agg", Start: 14.5, End: 14.5},
		{Kind: EventChoose, Stage: "s1 choose", Start: 14.5, End: 15},
		{Kind: EventKind(9), Stage: "mystery", Start: 15, End: 16},
	}
}

// TestWriteChromeTraceGolden pins the exact serialized bytes of the legacy
// Chrome trace. The golden file is the schema contract: any change to track
// assignment, metadata events, or field order shows up as a diff here.
// Regenerate deliberately with: go test ./internal/engine -run Golden -update
func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixedTimeline()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output differs from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWriteChromeTraceTracks(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, fixedTimeline()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			Tid   int     `json:"tid"`
			Dur   float64 `json:"dur"`
			Args  struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	// Track names are declared via thread_name metadata, known kinds first,
	// then the unknown kind on its own labeled track (not collapsed to 0).
	trackName := map[int]string{}
	tidOf := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Phase == "M" && ev.Name == "thread_name":
			trackName[ev.Tid] = ev.Args.Name
		case ev.Phase == "X" || ev.Phase == "i":
			tidOf[ev.Name] = ev.Tid
		}
	}
	wantTracks := map[int]string{1: "stage", 2: "eval", 3: "choose", 4: "pruned", 5: "event9"}
	for tid, name := range wantTracks {
		if trackName[tid] != name {
			t.Errorf("track %d named %q, want %q", tid, trackName[tid], name)
		}
	}
	if tidOf["mystery"] == 0 {
		t.Errorf("unknown-kind event landed on tid 0: %v", tidOf)
	}
	if tidOf["mystery"] == tidOf["s0 load"] {
		t.Error("unknown-kind event shares a track with stage events")
	}

	// Instant events must not carry a duration; complete events must.
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "i" && ev.Dur != 0 {
			t.Errorf("instant event %q has dur %g", ev.Name, ev.Dur)
		}
		if ev.Phase == "X" && ev.Dur <= 0 {
			t.Errorf("complete event %q has no duration", ev.Name)
		}
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatalf("WriteChromeTrace(empty): %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("empty trace missing traceEvents array")
	}
}

func TestSummarizeTimelineCoversUnknownKinds(t *testing.T) {
	got := SummarizeTimeline(fixedTimeline())
	for _, want := range []string{"stage", "eval", "choose", "pruned", "event9"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "2 events") {
		t.Errorf("summary missing eval count:\n%s", got)
	}
	if SummarizeTimeline(nil) != "" {
		t.Errorf("empty summary = %q, want empty", SummarizeTimeline(nil))
	}
}

func TestWriteTextEdgeCases(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, nil); err != nil {
		t.Fatalf("WriteText(empty): %v", err)
	}
	if !strings.Contains(buf.String(), "empty timeline") {
		t.Errorf("empty timeline message missing: %q", buf.String())
	}

	buf.Reset()
	if err := WriteText(&buf, fixedTimeline()); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"s0 load", "mystery", "event9"} {
		if !strings.Contains(out, want) {
			t.Errorf("text timeline missing %q:\n%s", want, out)
		}
	}
}
