package engine_test

import (
	"testing"

	"metadataflow/internal/dataset"
	"metadataflow/internal/faults"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
)

// buildSolePartitionMDF is buildFilterMDF with a single-partition input, so
// exactly one node holds the sole copy of every intermediate dataset.
func buildSolePartitionMDF(t *testing.T) *graph.Graph {
	t.Helper()
	b := mdf.NewBuilder()
	src := b.Source("src", mdf.SourceFunc(func() *dataset.Dataset {
		return dataset.FromRows("input", intRows(1000), 1, 1<<20)
	}), 0.001)
	specs := []mdf.BranchSpec{
		{Label: "limit=100", Hint: 100},
		{Label: "limit=500", Hint: 500},
		{Label: "limit=900", Hint: 900},
	}
	chooser := mdf.NewChooser(mdf.SizeEvaluator(), mdf.Max())
	out := src.Explore("limits", specs, chooser, func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
		limit := int(spec.Hint)
		return start.Then("filter<"+spec.Label, mdf.FilterRows("filtered", func(r dataset.Row) bool {
			return r.(int) < limit
		}), 0.002)
	})
	out.Then("sink", mdf.Identity("result"), 0.001)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// TestSoleCopyCrashMidChoose permanently kills each node in turn right as
// the choose window opens, on a workload whose datasets have exactly one
// partition — so whichever node is the home loses the only copy and the
// engine must re-derive it from lineage before the choose can conclude.
func TestSoleCopyCrashMidChoose(t *testing.T) {
	clean := runMDF(t, buildSolePartitionMDF(t), faultOpts(nil))
	rederived := 0
	for node := 0; node < 4; node++ {
		plan := &faults.Plan{
			Crashes: []faults.Crash{{Node: node, AfterStages: 4, Permanent: true}},
		}
		res := runMDF(t, buildSolePartitionMDF(t), faultOpts(plan))
		if got, want := res.Output.NumRows(), clean.Output.NumRows(); got != want {
			t.Errorf("node %d: output rows = %d, want %d", node, got, want)
		}
		if got, want := res.Metrics.ChooseEvals, clean.Metrics.ChooseEvals; got != want {
			t.Errorf("node %d: choose evals = %d, want %d", node, got, want)
		}
		if res.Metrics.NodeCrashes != 1 {
			t.Errorf("node %d: crashes = %d, want 1", node, res.Metrics.NodeCrashes)
		}
		rederived += res.Metrics.PartitionsRederived + res.Metrics.PartitionsRebalanced
	}
	// At least the home node's crash must have forced lineage re-derivation
	// or rebalancing of the sole copy.
	if rederived == 0 {
		t.Error("no crash forced re-derivation of the sole partition copy")
	}
}

// TestBackToBackSameNodeCrashesWithinRetryWindow crashes the same node at
// two consecutive stage boundaries while a panicking evaluator's retry
// backoff (stretched to dwarf the gap between the crashes) is still open:
// the second crash lands inside the recovery/retry window of the first.
func TestBackToBackSameNodeCrashesWithinRetryWindow(t *testing.T) {
	clean := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), faultOpts(nil))
	plan := &faults.Plan{
		Retry: faults.RetryPolicy{MaxAttempts: 3, BackoffSec: 30},
		Crashes: []faults.Crash{
			{Node: 1, AfterStages: 2},
			{Node: 1, AfterStages: 3},
		},
		Panics: []faults.PanicSpec{{Target: faults.TargetEval, Times: 2}},
	}
	res := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), faultOpts(plan))
	if got, want := res.Output.NumRows(), clean.Output.NumRows(); got != want {
		t.Errorf("output rows = %d, want %d", got, want)
	}
	if got, want := res.Metrics.ChooseEvals, clean.Metrics.ChooseEvals; got != want {
		t.Errorf("choose evals = %d, want %d", got, want)
	}
	if res.Metrics.NodeCrashes != 2 {
		t.Errorf("node crashes = %d, want 2", res.Metrics.NodeCrashes)
	}
	if res.Metrics.Retries < 2 {
		t.Errorf("retries = %d, want >= 2 (panic budget must be consumed)", res.Metrics.Retries)
	}
	if res.CompletionTime() < clean.CompletionTime() {
		t.Errorf("faulted run (%v) finished before fault-free run (%v)",
			res.CompletionTime(), clean.CompletionTime())
	}
}

// TestFaultWindowSpanningCheckpoint degrades every node's disk for the whole
// run — so the checkpoints themselves are written under degradation — then
// crashes a node, forcing recovery to restore from checkpoints created
// inside the fault window.
func TestFaultWindowSpanningCheckpoint(t *testing.T) {
	clean := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), faultOpts(nil))
	plan := &faults.Plan{
		DiskFaults: []faults.Window{
			{Node: 0, From: 0, Factor: 6},
			{Node: 1, From: 0, Factor: 6},
			{Node: 2, From: 0, Factor: 6},
			{Node: 3, From: 0, Factor: 6},
		},
		Crashes: []faults.Crash{{Node: 2, AfterStages: 4}},
	}
	res := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), faultOpts(plan))
	if got, want := res.Output.NumRows(), clean.Output.NumRows(); got != want {
		t.Errorf("output rows = %d, want %d", got, want)
	}
	if res.Metrics.Mem.Checkpoints == 0 {
		t.Error("no checkpoints written inside the fault window")
	}
	if res.Metrics.NodeCrashes != 1 {
		t.Errorf("node crashes = %d, want 1", res.Metrics.NodeCrashes)
	}
	if res.CompletionTime() < clean.CompletionTime() {
		t.Errorf("degraded run (%v) finished before fault-free run (%v)",
			res.CompletionTime(), clean.CompletionTime())
	}
}
