package engine

import (
	"errors"
	"fmt"

	"metadataflow/internal/dataset"
	"metadataflow/internal/faults"
	"metadataflow/internal/graph"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/obs"
	"metadataflow/internal/sim"
)

// QuarantineRecord documents a branch discarded because one of its operator
// functions kept panicking past the retry budget.
type QuarantineRecord struct {
	// Choose is the display label of the choose stage owning the branch.
	Choose string
	// Branch is the branch index within the choose's scope.
	Branch int
	// Reason is the final failure message.
	Reason string
}

// opPanicError marks a recovered operator panic. Unlike a plain operator
// error (which fails the run immediately, as before), a panic is retried
// under the run's retry policy and, if persistent on a branch, quarantines
// the branch instead of crashing the run.
type opPanicError struct {
	op  string
	val any
}

func (e *opPanicError) Error() string { return fmt.Sprintf("operator %q panicked: %v", e.op, e.val) }

// IsPanic reports whether a run error originated in an operator panic that
// persisted past the retry budget. The service layer treats such failures as
// transient (the job is retried with backoff, and repeated offenders trip
// the tenant's quarantine) while every other run error is permanent.
func IsPanic(err error) bool {
	var pe *opPanicError
	return errors.As(err, &pe)
}

// callTransform invokes one operator function under recover(), converting
// panics — injected or genuine — into opPanicError.
func (r *Run) callTransform(op *graph.Operator, in []*dataset.Dataset) (out *dataset.Dataset, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &opPanicError{op: op.Name, val: v}
		}
	}()
	if r.injector != nil && r.injector.TakePanic(op.Name, faults.TargetTransform) {
		r.metrics.PanicsInjected++
		panic("injected transform fault")
	}
	return op.Transform(in)
}

// callScore invokes a choose evaluator under recover().
func (r *Run) callScore(op *graph.Operator, d *dataset.Dataset) (score float64, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &opPanicError{op: op.Name, val: v}
		}
	}()
	if r.injector != nil && r.injector.TakePanic(op.Name, faults.TargetEval) {
		r.metrics.PanicsInjected++
		panic("injected evaluator fault")
	}
	return op.Chooser.Score(d), nil
}

// runTransform executes an operator function with bounded retry and
// exponential virtual-time backoff. penalty is the backoff time accrued by
// failed attempts, to be charged to the stage regardless of the outcome. A
// non-panic error propagates immediately; a panic persisting past the retry
// budget is returned as *opPanicError.
func (r *Run) runTransform(op *graph.Operator, in []*dataset.Dataset) (out *dataset.Dataset, penalty sim.VTime, err error) {
	for attempt := 1; ; attempt++ {
		out, err = r.callTransform(op, in)
		if err == nil {
			return out, penalty, nil
		}
		var pe *opPanicError
		if !errors.As(err, &pe) || attempt >= r.retry.MaxAttempts {
			return nil, penalty, err
		}
		r.metrics.Retries++
		penalty += sim.VTime(r.retry.Backoff(attempt))
		r.decide(obs.Decision{
			T: r.now, Node: obs.NodeMaster, Component: "faults", Kind: "retry",
			Subject: op.Name,
			Detail:  fmt.Sprintf("transform attempt %d of %d, backoff %gs", attempt, r.retry.MaxAttempts, r.retry.Backoff(attempt)),
		})
	}
}

// runScore executes a choose evaluator with the same retry/backoff regime as
// runTransform. Evaluators have no error path, so any returned error is a
// persistent panic.
func (r *Run) runScore(op *graph.Operator, d *dataset.Dataset) (score float64, penalty sim.VTime, err error) {
	for attempt := 1; ; attempt++ {
		score, err = r.callScore(op, d)
		if err == nil {
			return score, penalty, nil
		}
		if attempt >= r.retry.MaxAttempts {
			return 0, penalty, err
		}
		r.metrics.Retries++
		penalty += sim.VTime(r.retry.Backoff(attempt))
		r.decide(obs.Decision{
			T: r.now, Node: obs.NodeMaster, Component: "faults", Kind: "retry",
			Subject: op.Name,
			Detail:  fmt.Sprintf("evaluator attempt %d of %d, backoff %gs", attempt, r.retry.MaxAttempts, r.retry.Backoff(attempt)),
		})
	}
}

// homeOf maps a partition index to its current home node: index mod workers
// while that node lives, otherwise the deterministic stand-in among the
// survivors.
func (r *Run) homeOf(i int) int {
	return r.opts.Cluster.NodeFor(i).ID
}

// nodeOf resolves the node holding a partition, honouring rebalancing
// overrides recorded by failure recovery.
func (r *Run) nodeOf(key dataset.PartKey, i int) int {
	if n, ok := r.placement[key]; ok {
		return n
	}
	return i % len(r.allocs)
}

// placeNew picks the node for a freshly produced partition and records an
// override when failures have moved it off its default home.
func (r *Run) placeNew(key dataset.PartKey, i int) int {
	n := r.homeOf(i)
	if n != i%len(r.allocs) {
		r.placement[key] = n
	}
	return n
}

// liveAllocs returns the indices of allocators on live nodes.
func (r *Run) liveAllocs() []int {
	out := make([]int, 0, len(r.allocs))
	for i, n := range r.opts.Cluster.Nodes {
		if n.Alive() {
			out = append(out, i)
		}
	}
	return out
}

// onCrash recovers from one injected node failure at the current virtual
// time. A non-permanent crash models a process restart: the node loses its
// memory-resident partitions; those with durable on-disk copies are simply
// re-read on next access, the rest are re-derived by lineage on the
// restarted node. A permanent crash removes the node from the live set: its
// checkpointed partitions are rebalanced onto survivors (adopting the
// distributed-filesystem copy, charged as a network transfer) and the lost
// ones re-derived on their new home nodes.
func (r *Run) onCrash(c faults.Crash) error {
	r.metrics.NodeCrashes++
	detail := "transient (process restart)"
	if c.Permanent {
		detail = "permanent (machine loss)"
	}
	r.decide(obs.Decision{
		T: r.now, Node: c.Node, Component: "faults", Kind: "crash",
		Subject: fmt.Sprintf("node %d", c.Node), Detail: detail,
	})
	alloc := r.allocs[c.Node]
	if !c.Permanent {
		lost := alloc.Crash()
		// Before trusting the surviving durable copies, verify their
		// checkpoint-store entries; corrupt ones join the re-derivation.
		if demoted := r.distrustCorrupt(alloc); len(demoted) > 0 {
			lost = append(lost, demoted...)
			memorymgr.SortLost(lost)
		}
		r.rederive(lost)
		return nil
	}
	checkpointed, lost := alloc.Evacuate()
	if ok, corrupt := r.verifyEvacuated(checkpointed); len(corrupt) > 0 {
		checkpointed = ok
		lost = append(lost, corrupt...)
		memorymgr.SortLost(lost)
	}
	if err := r.opts.Cluster.Kill(c.Node); err != nil {
		return fmt.Errorf("engine: fault plan: %w", err)
	}
	start := r.now
	end := start
	cfg := r.opts.Cluster.Config
	for _, l := range checkpointed {
		n := r.homeOf(l.Key.Index)
		r.placement[l.Key] = n
		r.allocs[n].AdoptSpilled(l.Key, l.Bytes)
		t := r.opts.Cluster.Nodes[n].Net(start, cfg.NetSec(l.Bytes))
		if t > end {
			end = t
		}
		r.metrics.PartitionsRebalanced++
	}
	if len(checkpointed) > 0 {
		r.decide(obs.Decision{
			T: start, Node: c.Node, Component: "faults", Kind: "rebalance",
			Subject: fmt.Sprintf("node %d", c.Node),
			Detail:  fmt.Sprintf("%d checkpointed partitions adopted by survivors", len(checkpointed)),
		})
		r.span(obs.NodeMaster, obs.KindRecovery, fmt.Sprintf("rebalance node %d", c.Node), start, end)
	}
	if end > r.now {
		r.metrics.RecoverySec += end - r.now
		r.now = end
	}
	r.rederive(lost)
	return nil
}

// rederive restores lost partitions by re-executing their producing stages:
// each distinct producer is charged its recorded virtual duration once per
// receiving node (the re-execution runs on the node that will hold the
// partition), then the partition is stored again. Recovery advances the
// run's virtual clock.
func (r *Run) rederive(lost []memorymgr.Lost) {
	if len(lost) == 0 {
		return
	}
	start := r.now
	end := start
	type producerNode struct{ stage, node int }
	reExecEnd := make(map[producerNode]sim.VTime)
	reExecuted := make(map[int]bool)
	for _, l := range lost {
		node := r.homeOf(l.Key.Index)
		t := start
		if prod, ok := r.producerOf[l.Key.Dataset]; ok {
			pn := producerNode{prod, node}
			if e, charged := reExecEnd[pn]; charged {
				t = e
			} else {
				t = r.opts.Cluster.Nodes[node].CPU(start, r.stageDur[prod])
				reExecEnd[pn] = t
				if !reExecuted[prod] {
					reExecuted[prod] = true
					r.metrics.StagesReExecuted++
				}
			}
		}
		t = r.allocs[node].Put(l.Key, l.Bytes, t)
		r.placement[l.Key] = node
		r.metrics.PartitionsRederived++
		r.metrics.RederivedBytes += l.Bytes
		if t > end {
			end = t
		}
	}
	if r.probe != nil {
		d := obs.Decision{
			T: start, Node: obs.NodeMaster, Component: "faults", Kind: "rederive",
			Subject: fmt.Sprintf("%d lost partitions", len(lost)),
			Detail:  fmt.Sprintf("%d producing stages re-executed", len(reExecuted)),
		}
		for _, l := range lost {
			d.Candidates = append(d.Candidates, obs.Candidate{
				Label: r.probe.Label(int64(l.Key.Dataset), l.Key.Index),
				Score: float64(l.Bytes), Chosen: true,
			})
		}
		r.probe.Decision(d)
		r.span(obs.NodeMaster, obs.KindRecovery, "rederive", start, end)
	}
	if end > r.now {
		r.metrics.RecoverySec += end - r.now
		r.now = end
	}
}

// quarantine discards a branch whose operator kept failing: its unexecuted
// stages are skipped, its result dataset released, and the decision recorded
// so the run degrades gracefully instead of crashing.
func (r *Run) quarantine(chooseSt *graph.Stage, branch int, reason string) {
	cs := r.chooseStateFor(chooseSt)
	if cs.quarantined[branch] {
		return
	}
	cs.quarantined[branch] = true
	r.metrics.BranchesQuarantined++
	r.quarantined = append(r.quarantined, QuarantineRecord{
		Choose: chooseSt.String(), Branch: branch, Reason: reason,
	})
	r.decide(obs.Decision{
		T: r.now, Node: obs.NodeMaster, Component: "faults", Kind: "quarantine",
		Subject: fmt.Sprintf("%s[b%d]", chooseSt, branch), Detail: reason,
	})
	if scope := r.plan.ScopeOfChoose(chooseSt); scope != nil {
		for _, st := range r.plan.BranchStages(scope, branch) {
			r.skipStage(st, r.now)
		}
	}
	if pres := r.plan.Pre(chooseSt); branch < len(pres) {
		// A branch quarantined after all its stages ran never gets a score,
		// so close its lifetime interval here.
		if ref := r.plan.Branch(pres[branch]); ref != nil {
			r.endBranchInterval(*ref, r.now)
		}
	}
	r.discardBranchDataset(chooseSt, cs, branch, false)
	r.refreshReady()
}

// branchOfStage locates the choose stage and branch index owning st, if st
// lies inside an exploration scope.
func (r *Run) branchOfStage(st *graph.Stage) (*graph.Stage, int, bool) {
	ref := r.plan.Branch(st)
	if ref == nil {
		return nil, 0, false
	}
	scope := r.plan.Scopes[ref.Scope]
	chooseSt := r.plan.StageOf(scope.Choose)
	if chooseSt == nil {
		return nil, 0, false
	}
	return chooseSt, ref.Branch, true
}
