package engine_test

import (
	"testing"

	"metadataflow/internal/cluster"
	"metadataflow/internal/dataset"
	"metadataflow/internal/engine"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/sim"
)

func testCluster(memPerWorker sim.Bytes) *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Workers = 4
	cfg.MemPerWorker = memPerWorker
	return cluster.MustNew(cfg)
}

func intRows(n int) []dataset.Row {
	rows := make([]dataset.Row, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}

// buildFilterMDF explores three filter thresholds and keeps the branch whose
// output is smallest but non-empty, via min over sizes with a floor.
func buildFilterMDF(t *testing.T, sel mdf.Selector, eval mdf.Evaluator) *graph.Graph {
	t.Helper()
	b := mdf.NewBuilder()
	src := b.Source("src", mdf.SourceFunc(func() *dataset.Dataset {
		return dataset.FromRows("input", intRows(1000), 4, 1<<20)
	}), 0.001)
	specs := []mdf.BranchSpec{
		{Label: "limit=100", Hint: 100},
		{Label: "limit=500", Hint: 500},
		{Label: "limit=900", Hint: 900},
	}
	chooser := mdf.NewChooser(eval, sel)
	out := src.Explore("limits", specs, chooser, func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
		limit := int(spec.Hint)
		return start.Then("filter<"+spec.Label, mdf.FilterRows("filtered", func(r dataset.Row) bool {
			return r.(int) < limit
		}), 0.002)
	})
	out.Then("sink", mdf.Identity("result"), 0.001)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func runMDF(t *testing.T, g *graph.Graph, opts engine.Options) *engine.Result {
	t.Helper()
	res, err := engine.Execute(g, opts)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res
}

func TestExecuteMinSelection(t *testing.T) {
	g := buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator())
	res := runMDF(t, g, engine.Options{
		Cluster:     testCluster(1 << 30),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
	})
	// Max over size selects limit=900 -> 900 rows survive the filter.
	if got := res.Output.NumRows(); got != 900 {
		t.Errorf("output rows = %d, want 900", got)
	}
	if res.CompletionTime() <= 0 {
		t.Errorf("completion time = %v, want > 0", res.CompletionTime())
	}
	if res.Metrics.ChooseEvals != 3 {
		t.Errorf("choose evals = %d, want 3", res.Metrics.ChooseEvals)
	}
}

func TestExecuteMinPicksSmallest(t *testing.T) {
	g := buildFilterMDF(t, mdf.Min(), mdf.SizeEvaluator())
	res := runMDF(t, g, engine.Options{
		Cluster:   testCluster(1 << 30),
		Policy:    memorymgr.LRU,
		Scheduler: scheduler.BFS(),
	})
	if got := res.Output.NumRows(); got != 100 {
		t.Errorf("output rows = %d, want 100", got)
	}
}

func TestKThresholdPrunesSuperfluousBranches(t *testing.T) {
	// first-1 with threshold >= 50 rows: the first branch (100 rows)
	// qualifies, so the remaining two branches must be pruned (R1b).
	sel := mdf.KThreshold(1, 50, false)
	g := buildFilterMDF(t, sel, mdf.SizeEvaluator())
	res := runMDF(t, g, engine.Options{
		Cluster:     testCluster(1 << 30),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(scheduler.SortedHint(false)),
		Incremental: true,
	})
	if got := res.Output.NumRows(); got != 100 {
		t.Errorf("output rows = %d, want 100", got)
	}
	if res.Metrics.BranchesPruned != 2 {
		t.Errorf("branches pruned = %d, want 2", res.Metrics.BranchesPruned)
	}
	if res.Metrics.ChooseEvals != 1 {
		t.Errorf("choose evals = %d, want 1", res.Metrics.ChooseEvals)
	}
}

func TestIncrementalDiscardsLosingBranches(t *testing.T) {
	g := buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator())
	res := runMDF(t, g, engine.Options{
		Cluster:     testCluster(1 << 30),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
	})
	// With max selection and incremental evaluation, at least one losing
	// branch dataset is discarded before the choose completes (R1a); the
	// final branch's eviction coincides with the choose itself.
	if res.Metrics.BranchesDiscarded < 1 {
		t.Errorf("branches discarded = %d, want >= 1", res.Metrics.BranchesDiscarded)
	}
}

func TestHitRatioDegradesWithSmallMemory(t *testing.T) {
	big := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.LRU, Scheduler: scheduler.BFS(),
	})
	small := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), engine.Options{
		Cluster: testCluster(1 << 20), Policy: memorymgr.LRU, Scheduler: scheduler.BFS(),
	})
	if hr := big.Metrics.Mem.HitRatio(); hr != 1 {
		t.Errorf("big-memory hit ratio = %v, want 1", hr)
	}
	if hr := small.Metrics.Mem.HitRatio(); hr >= 1 {
		t.Errorf("small-memory hit ratio = %v, want < 1", hr)
	}
	if small.CompletionTime() <= big.CompletionTime() {
		t.Errorf("small-memory run (%v) should be slower than big-memory run (%v)",
			small.CompletionTime(), big.CompletionTime())
	}
}

func TestBASPeakLiveDatasetsAtMostBFS(t *testing.T) {
	bas := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true,
	})
	bfs := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.LRU,
		Scheduler: scheduler.BFS(),
	})
	if bas.Metrics.PeakLiveDatasets > bfs.Metrics.PeakLiveDatasets {
		t.Errorf("BAS peak live %d > BFS peak live %d (Thm 4.3)",
			bas.Metrics.PeakLiveDatasets, bfs.Metrics.PeakLiveDatasets)
	}
}

func TestFailureRecoveryPreservesOutput(t *testing.T) {
	clean := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true,
	})
	failed := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true,
		FailAfterStage: 3, FailNode: 1,
	})
	if clean.Output.NumRows() != failed.Output.NumRows() {
		t.Errorf("failure changed output: %d vs %d rows",
			clean.Output.NumRows(), failed.Output.NumRows())
	}
	if failed.CompletionTime() < clean.CompletionTime() {
		t.Errorf("failed run (%v) should not be faster than clean run (%v)",
			failed.CompletionTime(), clean.CompletionTime())
	}
}

func TestStragglerSlowsCompletion(t *testing.T) {
	c1 := testCluster(1 << 30)
	clean := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), engine.Options{
		Cluster: c1, Policy: memorymgr.AMM, Scheduler: scheduler.BAS(nil),
	})
	c2 := testCluster(1 << 30)
	c2.Nodes[0].SlowFactor = 10
	slow := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), engine.Options{
		Cluster: c2, Policy: memorymgr.AMM, Scheduler: scheduler.BAS(nil),
	})
	if slow.CompletionTime() <= clean.CompletionTime() {
		t.Errorf("straggler run (%v) should be slower than clean run (%v)",
			slow.CompletionTime(), clean.CompletionTime())
	}
}

func TestModeSelectorNotIncremental(t *testing.T) {
	g := buildFilterMDF(t, mdf.Mode(), mdf.FuncEvaluator("const", func(d *dataset.Dataset) float64 {
		if d.NumRows() >= 500 {
			return 1 // two branches score 1 -> mode
		}
		return 0
	}))
	res := runMDF(t, g, engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true,
	})
	// Mode selects the two branches scoring 1: 500 + 900 rows concatenated.
	if got := res.Output.NumRows(); got != 1400 {
		t.Errorf("output rows = %d, want 1400", got)
	}
	if res.Metrics.BranchesPruned != 0 {
		t.Errorf("mode must not prune branches, pruned %d", res.Metrics.BranchesPruned)
	}
}
