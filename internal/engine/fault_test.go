package engine_test

import (
	"strings"
	"testing"

	"metadataflow/internal/engine"
	"metadataflow/internal/faults"
	"metadataflow/internal/mdf"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
)

func faultOpts(plan *faults.Plan) engine.Options {
	return engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true,
		Checkpoint: true, Faults: plan,
	}
}

// TestFaultPlansPreserveDecisions is the core resilience invariant: for any
// valid fault plan the run terminates, chooses the same branches, produces
// the same output, and takes at least as long as the fault-free run.
func TestFaultPlansPreserveDecisions(t *testing.T) {
	clean := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), faultOpts(nil))
	cases := []struct {
		name string
		plan *faults.Plan
	}{
		{"transient crash", &faults.Plan{
			Crashes: []faults.Crash{{Node: 1, AfterStages: 3}},
		}},
		{"two crashes", &faults.Plan{
			Crashes: []faults.Crash{{Node: 1, AfterStages: 2}, {Node: 2, AfterStages: 4}},
		}},
		{"repeated crash of one node", &faults.Plan{
			Crashes: []faults.Crash{{Node: 1, AfterStages: 2}, {Node: 1, AfterStages: 4}},
		}},
		{"permanent crash", &faults.Plan{
			Crashes: []faults.Crash{{Node: 3, AfterStages: 3, Permanent: true}},
		}},
		{"slowdown window", &faults.Plan{
			Slowdowns: []faults.Window{{Node: 0, From: 0, To: 50, Factor: 8}},
		}},
		{"disk degradation", &faults.Plan{
			DiskFaults: []faults.Window{{Node: 2, From: 0, Factor: 4}},
		}},
		{"sub-budget evaluator panic", &faults.Plan{
			Panics: []faults.PanicSpec{{Target: faults.TargetEval, Times: 2}},
		}},
		{"kitchen sink", &faults.Plan{
			Crashes:    []faults.Crash{{Node: 1, AfterStages: 2}, {Node: 3, AfterStages: 4, Permanent: true}},
			Slowdowns:  []faults.Window{{Node: 0, From: 0, To: 30, Factor: 4}},
			DiskFaults: []faults.Window{{Node: 2, From: 10, Factor: 2}},
			Panics:     []faults.PanicSpec{{Target: faults.TargetEval, Times: 1}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), faultOpts(tc.plan))
			if got, want := res.Output.NumRows(), clean.Output.NumRows(); got != want {
				t.Errorf("output rows = %d, want %d", got, want)
			}
			if got, want := res.Metrics.ChooseEvals, clean.Metrics.ChooseEvals; got != want {
				t.Errorf("choose evals = %d, want %d", got, want)
			}
			if got, want := res.Metrics.BranchesPruned, clean.Metrics.BranchesPruned; got != want {
				t.Errorf("branches pruned = %d, want %d", got, want)
			}
			if res.CompletionTime() < clean.CompletionTime() {
				t.Errorf("faulty run (%v) finished before fault-free run (%v)",
					res.CompletionTime(), clean.CompletionTime())
			}
			if res.Metrics.FaultsInjected == 0 {
				t.Error("plan injected no faults")
			}
		})
	}
}

// TestMultiFailureWithPanickingEvaluator is the acceptance scenario: two node
// crashes plus a panicking evaluator must complete without a process panic
// and with the same choose decisions as the fault-free run.
func TestMultiFailureWithPanickingEvaluator(t *testing.T) {
	clean := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), faultOpts(nil))
	plan := &faults.Plan{
		Crashes: []faults.Crash{{Node: 1, AfterStages: 2}, {Node: 2, AfterStages: 4}},
		Panics:  []faults.PanicSpec{{Target: faults.TargetEval, Times: 1}},
	}
	res := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), faultOpts(plan))
	if got, want := res.Output.NumRows(), clean.Output.NumRows(); got != want {
		t.Errorf("output rows = %d, want %d", got, want)
	}
	if got, want := res.Metrics.ChooseEvals, clean.Metrics.ChooseEvals; got != want {
		t.Errorf("choose evals = %d, want %d", got, want)
	}
	if res.Metrics.NodeCrashes != 2 {
		t.Errorf("node crashes = %d, want 2", res.Metrics.NodeCrashes)
	}
	if res.Metrics.PanicsInjected < 1 {
		t.Errorf("panics injected = %d, want >= 1", res.Metrics.PanicsInjected)
	}
	if res.Metrics.Retries < 1 {
		t.Errorf("retries = %d, want >= 1", res.Metrics.Retries)
	}
}

// TestPersistentTransformPanicQuarantinesBranch exhausts the retry budget of
// one branch's transform; the branch is quarantined and the choose decides
// among the survivors.
func TestPersistentTransformPanicQuarantinesBranch(t *testing.T) {
	plan := &faults.Plan{
		Panics: []faults.PanicSpec{{Op: "filter<limit=900", Target: faults.TargetTransform, Times: 3}},
	}
	res := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), faultOpts(plan))
	// Max over size without the 900 branch selects limit=500.
	if got := res.Output.NumRows(); got != 500 {
		t.Errorf("output rows = %d, want 500 (largest surviving branch)", got)
	}
	if res.Metrics.BranchesQuarantined != 1 {
		t.Errorf("branches quarantined = %d, want 1", res.Metrics.BranchesQuarantined)
	}
	if len(res.Quarantined) != 1 {
		t.Fatalf("quarantine records = %d, want 1", len(res.Quarantined))
	}
	if rec := res.Quarantined[0]; !strings.Contains(rec.Reason, "panicked") {
		t.Errorf("quarantine reason %q does not mention the panic", rec.Reason)
	}
	if res.Metrics.ChooseEvals != 2 {
		t.Errorf("choose evals = %d, want 2 (quarantined branch never scored)", res.Metrics.ChooseEvals)
	}
}

// TestAllBranchesQuarantinedDegradesGracefully panics every evaluator call:
// all branches are quarantined and the run completes with an empty selection
// instead of crashing.
func TestAllBranchesQuarantinedDegradesGracefully(t *testing.T) {
	plan := &faults.Plan{
		Panics: []faults.PanicSpec{{Target: faults.TargetEval, Times: 9}},
	}
	res := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), faultOpts(plan))
	if res.Metrics.BranchesQuarantined != 3 {
		t.Errorf("branches quarantined = %d, want 3", res.Metrics.BranchesQuarantined)
	}
	if res.Output != nil && res.Output.NumRows() != 0 {
		t.Errorf("output rows = %d, want 0 (no branch survived)", res.Output.NumRows())
	}
}

// TestTrunkPanicFailsTheRun verifies a persistent panic outside any
// exploration scope cannot be quarantined and surfaces as a run error — but
// never as a process panic.
func TestTrunkPanicFailsTheRun(t *testing.T) {
	plan := &faults.Plan{
		Panics: []faults.PanicSpec{{Op: "sink", Target: faults.TargetTransform, Times: 3}},
	}
	g := buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator())
	_, err := engine.Execute(g, faultOpts(plan))
	if err == nil {
		t.Fatal("persistent trunk panic must fail the run")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("error %q does not mention the panic", err)
	}
}

// TestPermanentCrashRebalancesOntoSurvivors checks graceful degradation: the
// dead node leaves the live set and its partitions move to survivors.
func TestPermanentCrashRebalancesOntoSurvivors(t *testing.T) {
	cl := testCluster(1 << 30)
	opts := faultOpts(&faults.Plan{
		Crashes: []faults.Crash{{Node: 3, AfterStages: 3, Permanent: true}},
	})
	opts.Cluster = cl
	res := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), opts)
	if got := cl.NumLive(); got != 3 {
		t.Errorf("live nodes after run = %d, want 3", got)
	}
	if res.Metrics.NodeCrashes != 1 {
		t.Errorf("node crashes = %d, want 1", res.Metrics.NodeCrashes)
	}
	if res.Metrics.PartitionsRebalanced+res.Metrics.PartitionsRederived == 0 {
		t.Error("dead node's partitions were neither rebalanced nor re-derived")
	}
	if got := res.Output.NumRows(); got != 900 {
		t.Errorf("output rows = %d, want 900", got)
	}
}

// TestFaultRunsAreDeterministic runs the same plan twice and demands
// identical virtual completion times and fault metrics.
func TestFaultRunsAreDeterministic(t *testing.T) {
	plan := &faults.Plan{
		Crashes:    []faults.Crash{{Node: 1, AfterStages: 2}, {Node: 3, AfterStages: 4, Permanent: true}},
		Slowdowns:  []faults.Window{{Node: 0, From: 0, To: 30, Factor: 4}},
		DiskFaults: []faults.Window{{Node: 2, From: 10, Factor: 2}},
		Panics:     []faults.PanicSpec{{Target: faults.TargetEval, Times: 1}},
	}
	a := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), faultOpts(plan))
	b := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), faultOpts(plan))
	if a.CompletionTime() != b.CompletionTime() {
		t.Errorf("completion times differ: %v vs %v", a.CompletionTime(), b.CompletionTime())
	}
	if a.Metrics.FaultsInjected != b.Metrics.FaultsInjected ||
		a.Metrics.NodeCrashes != b.Metrics.NodeCrashes ||
		a.Metrics.Retries != b.Metrics.Retries ||
		a.Metrics.RecoverySec != b.Metrics.RecoverySec {
		t.Errorf("fault metrics differ: %+v vs %+v", a.Metrics, b.Metrics)
	}
}

// TestLegacyKnobsRouteThroughFaultPlan keeps the deprecated FailAfterStage /
// FailNode options working via the conversion shim.
func TestLegacyKnobsRouteThroughFaultPlan(t *testing.T) {
	res := runMDF(t, buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator()), engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true,
		FailAfterStage: 3, FailNode: 1,
	})
	if res.Metrics.NodeCrashes != 1 {
		t.Errorf("node crashes = %d, want 1 via legacy knobs", res.Metrics.NodeCrashes)
	}
	if got := res.Output.NumRows(); got != 900 {
		t.Errorf("output rows = %d, want 900", got)
	}
}
