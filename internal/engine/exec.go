package engine

import (
	"errors"
	"fmt"

	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
	"metadataflow/internal/obs"
	"metadataflow/internal/sim"
)

// orderAware matches sessions whose property-based pruning requires the
// scheduler to execute branches in sorted explorable order (Tab. 1).
type orderAware interface {
	SetSortedOrder(sorted bool)
}

// execStage executes a non-choose stage: it loads the inputs through the
// memory allocators, applies the pipelined operator chain for real, charges
// the virtual compute cost, and stores the output partitions.
func (r *Run) execStage(st *graph.Stage) error {
	ready := r.readyTime(st)

	// Explore operators simply forward their input (Def. 3.2); they incur
	// no computation or I/O.
	if st.IsExplore() {
		ins := r.inputs(st)
		if len(ins) != 1 || ins[0] == nil {
			return fmt.Errorf("engine: explore %s without input", st)
		}
		d := ins[0]
		r.registerOutput(st, d)
		r.consumeForward(d)
		r.markExecuted(st, ready, ready)
		r.trace(EventStage, st.String(), ready, ready)
		r.span(obs.NodeMaster, obs.KindStage, st.String(), ready, ready)
		return nil
	}

	ins := r.inputs(st)
	for i, d := range ins {
		if d == nil {
			return fmt.Errorf("engine: stage %s input %d missing", st, i)
		}
	}

	nodeT := r.loadInputs(ins, ready)
	r.chargeShuffle(st, ins, nodeT)

	// Apply the operator chain for real, accumulating virtual compute cost.
	// Fixed costs model inherently data-parallel work (e.g. a training
	// epoch) and spread evenly across workers; per-MB costs follow the
	// placement of the input bytes.
	cur := ins
	var cpuFixed, cpuScan, retryPenalty sim.VTime
	var externalBytes sim.Bytes
	for _, op := range st.Ops {
		inBytes := sim.Bytes(0)
		for _, d := range cur {
			inBytes += sim.Bytes(d.VirtualBytes())
		}
		out, penalty, err := r.runTransform(op, cur)
		retryPenalty += penalty
		if err != nil {
			var pe *opPanicError
			if errors.As(err, &pe) {
				if chooseSt, branch, ok := r.branchOfStage(st); ok {
					// A persistently panicking operator on a branch
					// quarantines the branch; the stage is absorbed into
					// the quarantine (skipped) and the run continues.
					r.now += retryPenalty
					r.quarantine(chooseSt, branch, err.Error())
					return nil
				}
			}
			return fmt.Errorf("engine: stage %s op %q: %w", st, op.Name, err)
		}
		if out == nil {
			return fmt.Errorf("engine: stage %s op %q returned nil dataset", st, op.Name)
		}
		if op.Kind == graph.KindSource {
			// Reading the external input charges a disk scan (§6.1: "it
			// requires a linear scan over the entire dataset").
			externalBytes += sim.Bytes(out.VirtualBytes())
			inBytes = sim.Bytes(out.VirtualBytes())
		}
		cpuFixed += sim.VTime(op.FixedCost)
		cpuScan += sim.VTime(op.CostPerMB * inBytes.MB())
		cur = []*dataset.Dataset{out}
	}
	out := cur[0]
	if retryPenalty > 0 {
		// Backoff between panic retries stalls the whole stage.
		for n := range nodeT {
			nodeT[n] += retryPenalty
		}
	}

	if externalBytes > 0 {
		live := r.liveAllocs()
		per := externalBytes / sim.Bytes(len(live))
		for _, n := range live {
			end := r.opts.Cluster.Nodes[n].Disk(nodeT[n], r.opts.Cluster.Config.DiskReadSec(per))
			nodeT[n] = end
		}
	}

	r.chargeCompute(ins, cpuFixed, cpuScan, nodeT)
	if r.probe != nil {
		// Register before storing: evictions triggered while the output's
		// first partitions land may already name later partitions of this
		// dataset in the audit log.
		r.probe.RegisterDataset(int64(out.ID), out.Name)
	}
	end := r.storeOutput(out, nodeT)

	for _, d := range ins {
		r.consumeInput(d)
	}
	r.registerOutput(st, out)
	r.markExecuted(st, ready, end)
	r.trace(EventStage, st.String(), ready, end)
	r.spanNodes(obs.KindStage, st.String(), ready, nodeT)

	// Incremental choose evaluation (§3.1): if this stage completes a
	// branch of an associative choose, score it immediately.
	if r.opts.Incremental {
		for _, post := range r.plan.Post(st) {
			if post.IsChoose() && post.Ops[0].Chooser.Associative() {
				if err := r.evalBranchOf(post, st); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// inputs returns the datasets of the stage's predecessors in edge order
// (nil entries for skipped predecessors).
func (r *Run) inputs(st *graph.Stage) []*dataset.Dataset {
	pres := r.plan.Pre(st)
	out := make([]*dataset.Dataset, len(pres))
	for i, pre := range pres {
		out[i] = r.stageOut[pre.ID]
	}
	return out
}

// loadInputs charges the access cost of every input partition and returns
// the per-node time cursors.
func (r *Run) loadInputs(ins []*dataset.Dataset, ready sim.VTime) []sim.VTime {
	nodeT := make([]sim.VTime, len(r.allocs))
	for i := range nodeT {
		nodeT[i] = ready
	}
	for _, d := range ins {
		if d == nil {
			continue
		}
		for i := range d.Parts {
			n := r.nodeOf(d.Key(i), i)
			end, _, err := r.allocs[n].Access(d.Key(i), nodeT[n])
			if err == nil && end > nodeT[n] {
				nodeT[n] = end
			}
		}
	}
	return nodeT
}

// chargeShuffle charges the network cost of wide input dependencies: each
// worker ships the (W-1)/W share of its partitions that other workers'
// tasks consume (App. A wide dependencies; the testbed's 1 Gbps links).
func (r *Run) chargeShuffle(st *graph.Stage, ins []*dataset.Dataset, nodeT []sim.VTime) {
	w := len(r.allocs)
	if w <= 1 {
		return
	}
	first := st.First()
	for i, pre := range r.plan.Pre(st) {
		d := ins[i]
		if d == nil {
			continue
		}
		dep, ok := r.plan.Graph.Dep(pre.Last(), first)
		if !ok || dep != graph.Wide {
			continue
		}
		perNode := make([]sim.Bytes, w)
		for pi, p := range d.Parts {
			perNode[r.nodeOf(d.Key(pi), pi)] += sim.Bytes(p.VirtualBytes)
		}
		for n, bytes := range perNode {
			if bytes == 0 {
				continue
			}
			moved := bytes * sim.Bytes(w-1) / sim.Bytes(w)
			end := r.opts.Cluster.Nodes[n].Net(nodeT[n], r.opts.Cluster.Config.NetSec(moved))
			if end > nodeT[n] {
				nodeT[n] = end
			}
		}
	}
}

// chargeCompute advances the node cursors by the stage's compute cost:
// fixed cost spreads evenly over all workers (data-parallel work), scan cost
// follows each node's share of the input bytes.
func (r *Run) chargeCompute(ins []*dataset.Dataset, cpuFixed, cpuScan sim.VTime, nodeT []sim.VTime) {
	if cpuFixed <= 0 && cpuScan <= 0 {
		return
	}
	scale := r.opts.Cluster.Config.ComputeScale
	cpuFixed = sim.VTime(float64(cpuFixed) * scale)
	cpuScan = sim.VTime(float64(cpuScan) * scale)
	r.metrics.ComputeSec += cpuFixed + cpuScan
	live := r.liveAllocs()
	shares := make([]float64, len(r.allocs))
	var total float64
	for _, d := range ins {
		if d == nil {
			continue
		}
		for i, p := range d.Parts {
			shares[r.nodeOf(d.Key(i), i)] += float64(p.VirtualBytes)
			total += float64(p.VirtualBytes)
		}
	}
	if total == 0 {
		for _, n := range live {
			shares[n] = 1
			total++
		}
	}
	if r.opts.Speculative {
		// Speculative re-execution rebalances compute by node speed: a
		// node's share is proportional to its capacity 1/slowdown, so a
		// straggler no longer gates the stage (§5 straggler mitigation).
		// The effective factor includes transient fault-injected slowdowns
		// and honours factors < 1 (faster-than-baseline nodes).
		var capTotal float64
		caps := make([]float64, len(r.allocs))
		for _, n := range live {
			sf := r.opts.Cluster.Nodes[n].EffectiveSlowFactor()
			if sf <= 0 {
				sf = 1
			}
			caps[n] = 1 / sf
			capTotal += caps[n]
		}
		work := cpuFixed + cpuScan
		for _, n := range live {
			dur := sim.VTime(float64(work) * caps[n] / capTotal)
			if dur <= 0 {
				continue
			}
			nodeT[n] = r.opts.Cluster.Nodes[n].CPU(nodeT[n], dur)
		}
		return
	}
	perNodeFixed := cpuFixed / sim.VTime(len(live))
	for _, n := range live {
		dur := perNodeFixed + sim.VTime(float64(cpuScan)*shares[n]/total)
		if dur <= 0 {
			continue
		}
		end := r.opts.Cluster.Nodes[n].CPU(nodeT[n], dur)
		nodeT[n] = end
	}
}

// storeOutput writes the output partitions to their nodes and returns the
// stage completion time.
func (r *Run) storeOutput(out *dataset.Dataset, nodeT []sim.VTime) sim.VTime {
	for i, p := range out.Parts {
		n := r.placeNew(out.Key(i), i)
		end := r.allocs[n].Put(out.Key(i), sim.Bytes(p.VirtualBytes), nodeT[n])
		if end > nodeT[n] {
			nodeT[n] = end
		}
	}
	end := sim.VTime(0)
	for _, t := range nodeT {
		if t > end {
			end = t
		}
	}
	return end
}

func (r *Run) markExecuted(st *graph.Stage, ready, end sim.VTime) {
	r.executed[st.ID] = true
	r.stageEnd[st.ID] = end
	if d := end - ready; d > 0 {
		// Recorded as the lineage re-execution cost of the stage's output.
		r.stageDur[st.ID] = d
	}
	if end > r.now {
		r.now = end
	}
	r.observeStageDone(st, ready, end, true)
}

// consumeForward adjusts consumer accounting when a stage forwards its input
// dataset unchanged (explore, single-selection choose): the forwarding read
// is replaced by the new consumers registered by registerOutput.
func (r *Run) consumeForward(d *dataset.Dataset) {
	if _, live := r.datasets[d.ID]; !live {
		return
	}
	r.consumersLeft[d.ID]--
	if r.consumersLeft[d.ID] <= 0 && !r.protected(d.ID) {
		r.discardDataset(d)
	}
}
