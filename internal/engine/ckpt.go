package engine

import (
	"fmt"
	"strings"

	"metadataflow/internal/ckptstore"
	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/obs"
	"metadataflow/internal/spec"
)

// This file mirrors the allocators' durable-copy bookkeeping into a real
// content-addressed checkpoint store (internal/ckptstore). The simulation
// keeps modelling checkpoint I/O costs through the allocators; the store
// adds the bytes themselves, keyed by the spec chain-prefix hash of the
// producing operator, so checkpoints survive a service restart and are
// shared across retries and jobs computing the same intermediate.
//
// Verification happens at crash recovery: before trusting a partition's
// durable copy, the engine loads and checksums its store entry. A miss —
// absent, torn, or bit-flipped — demotes the copy and the partition is
// re-derived by lineage, which is the paper's recovery path for
// un-checkpointed state. Corruption therefore costs recovery time, never
// correctness.

// chainOf maps a stage's output to its spec chain hash: the chain of the
// stage's final operator. Reports false when no mapping was provided
// (runs built directly from graphs rather than specs).
func (r *Run) chainOf(st *graph.Stage) (spec.Hash, bool) {
	last := st.Last()
	if last == nil || last.ID < 0 || last.ID >= len(r.opts.CkptChains) {
		return 0, false
	}
	return r.opts.CkptChains[last.ID], true
}

// encodePartition renders a partition's rows as the store payload. The
// fmt-based encoding is type-agnostic (rows are opaque to the engine) and
// deterministic for the deterministic row values a fixed spec produces —
// the same property the chaos harness's output checksums rely on.
func encodePartition(p *dataset.Partition) []byte {
	var b strings.Builder
	for _, row := range p.Rows {
		fmt.Fprintf(&b, "%v\x1f", row)
	}
	return []byte(b.String())
}

// mirrorCheckpoint writes partition i of stage st's output dataset into
// the checkpoint store, if a store and a chain mapping exist. Mirror
// failures are swallowed: the durable copy just will not verify later,
// which recovery already treats as re-derive.
func (r *Run) mirrorCheckpoint(st *graph.Stage, d *dataset.Dataset, i int) {
	if r.opts.Ckpts == nil {
		return
	}
	chain, ok := r.chainOf(st)
	if !ok {
		return
	}
	_ = r.opts.Ckpts.Put(ckptstore.Key{Chain: chain, Part: i}, encodePartition(d.Parts[i])) //lint:allow droppederr -- mirror is best-effort; a failed write surfaces as a miss on load
}

// stageOfDataset finds the plan stage whose output is the dataset, in
// plan order. Forwarding stages share their producer's dataset and — by
// construction of the chain hashes — its chain, so any match keys the
// same store entry.
func (r *Run) stageOfDataset(id dataset.ID) *graph.Stage {
	if prod, ok := r.producerOf[id]; ok && prod >= 0 && prod < len(r.plan.Stages) {
		return r.plan.Stages[prod]
	}
	return nil
}

// distrustCorrupt verifies the checkpoint-store entries backing the
// allocator's surviving durable copies after a crash of node. Copies
// whose entries are missing or fail their checksum are demoted and
// returned as lost, joining the lineage re-derivation pass. Checkpoint
// bit-flip faults (faults.CkptFlip) fire here, counted by load ordinal.
func (r *Run) distrustCorrupt(alloc *memorymgr.Allocator) []memorymgr.Lost {
	if r.opts.Ckpts == nil {
		return nil
	}
	var lost []memorymgr.Lost
	for _, key := range alloc.Keys() {
		if !alloc.Checkpointed(key) {
			continue
		}
		st := r.stageOfDataset(key.Dataset)
		if st == nil {
			continue
		}
		chain, ok := r.chainOf(st)
		if !ok {
			continue
		}
		sk := ckptstore.Key{Chain: chain, Part: key.Index}
		if r.injector != nil {
			if bit, flip := r.injector.NextCkptLoad(); flip {
				_ = r.opts.Ckpts.CorruptEntry(sk, bit) //lint:allow droppederr -- injected corruption; a missing entry is just a miss
			}
		}
		if _, err := r.opts.Ckpts.Get(sk); err != nil {
			if l, ok := alloc.DropDurable(key); ok {
				lost = append(lost, l)
				r.decide(obs.Decision{
					T: r.now, Node: obs.NodeMaster, Component: "faults", Kind: "ckptmiss",
					Subject: sk.String(), Detail: err.Error(),
				})
			}
		}
	}
	return lost
}

// verifyEvacuated splits a permanently dead node's checkpointed
// partitions into those whose store entries verify (rebalanced onto
// survivors) and those that do not (re-derived by lineage). Without a
// store every copy is trusted, as before.
func (r *Run) verifyEvacuated(checkpointed []memorymgr.Lost) (ok, corrupt []memorymgr.Lost) {
	if r.opts.Ckpts == nil {
		return checkpointed, nil
	}
	for _, l := range checkpointed {
		st := r.stageOfDataset(l.Key.Dataset)
		var chain spec.Hash
		mapped := false
		if st != nil {
			chain, mapped = r.chainOf(st)
		}
		if !mapped {
			ok = append(ok, l)
			continue
		}
		sk := ckptstore.Key{Chain: chain, Part: l.Key.Index}
		if r.injector != nil {
			if bit, flip := r.injector.NextCkptLoad(); flip {
				_ = r.opts.Ckpts.CorruptEntry(sk, bit) //lint:allow droppederr -- injected corruption; a missing entry is just a miss
			}
		}
		if _, err := r.opts.Ckpts.Get(sk); err != nil {
			corrupt = append(corrupt, l)
			r.decide(obs.Decision{
				T: r.now, Node: obs.NodeMaster, Component: "faults", Kind: "ckptmiss",
				Subject: sk.String(), Detail: err.Error(),
			})
			continue
		}
		ok = append(ok, l)
	}
	return ok, corrupt
}
