package engine

import (
	"fmt"

	"metadataflow/internal/graph"
	"metadataflow/internal/obs"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/sim"
)

// This file is the live-introspection surface of a run: Progress computes
// the per-branch completion state on demand (the service's
// GET /jobs/{id}/progress document), and the observe* helpers stream the
// same information into the probe's time-series layer as the run executes —
// per-branch stage latency and completion fraction, partial evaluator
// scores the moment a branch is scored, scheduler rank churn, and a
// lifetime interval per branch. Everything is emitted at scheduling
// boundaries in the engine's deterministic order, so the resulting
// mdf.series/v1 document is byte-identical across same-seed runs.

// Branch states reported by Progress.
const (
	BranchPending     = "pending"
	BranchRunning     = "running"
	BranchScored      = "scored"
	BranchPruned      = "pruned"
	BranchQuarantined = "quarantined"
)

// BranchProgress is the live state of one exploration branch.
type BranchProgress struct {
	// Scope indexes the plan's scopes; Branch the branch within it.
	Scope  int `json:"scope"`
	Branch int `json:"branch"`
	// Choose labels the scope's closing choose stage.
	Choose string `json:"choose"`
	// Stages counts the branch's stages; Done the executed ones, Pruned
	// the skipped ones.
	Stages int `json:"stages"`
	Done   int `json:"done"`
	Pruned int `json:"pruned"`
	// Completion is (Done+Pruned)/Stages: the fraction of the branch that
	// no longer needs work.
	Completion float64 `json:"completion"`
	// State is pending, running, scored, pruned or quarantined.
	State string `json:"state"`
	// Score is the evaluator score once State is scored.
	Score float64 `json:"score,omitempty"`
}

// Progress is a point-in-time view of a run's exploration state. It is
// computed from the run's bookkeeping on demand, in plan order, so the same
// execution prefix always yields the same document.
type Progress struct {
	// NowSec is the run's current virtual time.
	NowSec sim.VTime `json:"nowSec"`
	// Done reports whether the run has finished.
	Done bool `json:"done"`
	// StagesExecuted / StagesPruned / StagesTotal summarise the whole plan.
	StagesExecuted int `json:"stagesExecuted"`
	StagesPruned   int `json:"stagesPruned"`
	StagesTotal    int `json:"stagesTotal"`
	// Branches lists every exploration branch in (scope, branch) order.
	Branches []BranchProgress `json:"branches,omitempty"`
}

// Progress returns the run's live exploration state. It must only be called
// from the goroutine that owns the run (the step loop); it reads the same
// maps Step mutates.
func (r *Run) Progress() Progress {
	p := Progress{
		NowSec:         r.now,
		Done:           r.done,
		StagesExecuted: r.metrics.StagesExecuted,
		StagesPruned:   r.metrics.StagesPruned,
		StagesTotal:    len(r.plan.Stages),
	}
	for si, sc := range r.plan.Scopes {
		chooseSt := r.plan.StageOf(sc.Choose)
		for b := range sc.Branches {
			bp := BranchProgress{
				Scope:  si,
				Branch: b,
				Choose: chooseSt.String(),
			}
			for _, st := range r.plan.BranchStages(sc, b) {
				bp.Stages++
				if r.executed[st.ID] {
					bp.Done++
				} else if r.skipped[st.ID] {
					bp.Pruned++
				}
			}
			if bp.Stages > 0 {
				bp.Completion = float64(bp.Done+bp.Pruned) / float64(bp.Stages)
			}
			bp.State = r.branchState(chooseSt, b, bp)
			if bp.State == BranchScored {
				bp.Score = r.sessions[chooseSt.ID].scores[b]
			}
			p.Branches = append(p.Branches, bp)
		}
	}
	return p
}

func (r *Run) branchState(chooseSt *graph.Stage, b int, bp BranchProgress) string {
	if cs, ok := r.sessions[chooseSt.ID]; ok {
		if cs.quarantined[b] {
			return BranchQuarantined
		}
		if cs.offered[b] {
			return BranchScored
		}
	}
	switch {
	case bp.Stages > 0 && bp.Pruned == bp.Stages:
		return BranchPruned
	case bp.Done > 0 || bp.Pruned > 0:
		return BranchRunning
	default:
		return BranchPending
	}
}

// branchSeries renders the stable series-name suffix of a branch.
func branchSeries(ref graph.BranchRef) string {
	return fmt.Sprintf("s%d.b%d", ref.Scope, ref.Branch)
}

// observeStageDone streams per-branch progress after a stage settles
// (executed or pruned): the stage's latency lands in the branch's
// log-bucketed latency histogram and the branch's completion fraction is
// re-sampled. Called from markExecuted and skipStage, so pruning decisions
// move the completion series too.
func (r *Run) observeStageDone(st *graph.Stage, ready, end sim.VTime, executed bool) {
	if r.probe == nil {
		return
	}
	ref := r.plan.Branch(st)
	if ref == nil {
		return
	}
	suffix := branchSeries(*ref)
	if executed {
		r.probe.SeriesObserve(obs.NodeMaster, "engine.stage_latency."+suffix, end, (end - ready).Seconds())
	}
	r.beginBranchInterval(*ref, ready)
	done, total := 0, 0
	sc := r.plan.Scopes[ref.Scope]
	for _, bst := range r.plan.BranchStages(sc, ref.Branch) {
		total++
		if r.executed[bst.ID] || r.skipped[bst.ID] {
			done++
		}
	}
	if total > 0 {
		r.probe.SeriesSet(obs.NodeMaster, "engine.branch_progress."+suffix, end, float64(done)/float64(total))
		if done == total {
			r.endBranchInterval(*ref, end)
		}
	}
}

// observeScore streams a branch's evaluator score the moment the branch is
// scored (§3.1 incremental evaluation): the data feed mid-flight pruning
// and online cost calibration build on.
func (r *Run) observeScore(chooseSt *graph.Stage, branch int, t sim.VTime, score float64) {
	if r.probe == nil {
		return
	}
	pre := r.plan.Pre(chooseSt)[branch]
	ref := r.plan.Branch(pre)
	if ref == nil {
		return
	}
	r.probe.SeriesSet(obs.NodeMaster, "engine.branch_score."+branchSeries(*ref), t, score)
	r.endBranchInterval(*ref, t)
}

// beginBranchInterval opens the branch's lifetime interval on its first
// settled stage; repeated calls are no-ops.
func (r *Run) beginBranchInterval(ref graph.BranchRef, t sim.VTime) {
	if r.probe == nil {
		return
	}
	if _, open := r.branchIv[ref]; open {
		return
	}
	r.branchIv[ref] = r.probe.IntervalBegin(obs.NodeMaster, "engine.branch_active."+branchSeries(ref), t)
}

// endBranchInterval closes the branch's lifetime interval. Closing is
// idempotent — later closers (a score after the last stage, a quarantine
// after a prune) extend the recorded end instead of re-opening.
func (r *Run) endBranchInterval(ref graph.BranchRef, t sim.VTime) {
	if r.probe == nil {
		return
	}
	id, open := r.branchIv[ref]
	if !open {
		return
	}
	r.probe.IntervalEnd(id, t)
}

// observeRank streams the scheduler's candidate-rank churn: how many stages
// moved position between consecutive pick rankings (BAS changing its mind
// as hint regressions update). Only called with a live probe (observePick
// is installed via SetPickObserver under the probe nil-check).
func (r *Run) observeRank(rec scheduler.PickRecord) {
	churn := scheduler.RankChurn(r.lastRank, rec.Candidates)
	r.probe.SeriesAdd(obs.NodeMaster, "sched.rank_churn", r.now, float64(churn))
	r.lastRank = append(r.lastRank[:0], rec.Candidates...)
}
