package engine_test

import (
	"path/filepath"
	"testing"

	"metadataflow/internal/ckptstore"
	"metadataflow/internal/engine"
	"metadataflow/internal/faults"
	"metadataflow/internal/graph"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/spec"
)

// ckptSpec exercises the durable-store wiring end to end: a trunk op, an
// explore, and enough partitions that anticipatory checkpoints land on
// several nodes.
const ckptSpec = `{
  "name": "ckpt",
  "source": {"rows": 120, "partitions": 4, "virtualBytes": 4194304, "distribution": "normal", "seed": 3},
  "pipeline": [
    {"op": {"name": "std", "fn": "standardize"}},
    {"explore": {
      "name": "e",
      "branches": [
        {"label": "lo", "params": {"limit": 0.5}},
        {"label": "hi", "params": {"limit": 1.5}}
      ],
      "body": [{"op": {"name": "f", "fn": "filter-absless", "paramKey": "limit"}}],
      "choose": {"evaluator": "size", "selector": {"kind": "max"}}
    }}
  ]
}`

// compileCkptSpec parses the spec and returns its plan plus chain index.
func compileCkptSpec(t *testing.T) (*graph.Plan, []spec.Hash) {
	t.Helper()
	s, err := spec.Parse([]byte(ckptSpec))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, err := s.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	plan, err := graph.BuildPlan(g)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return plan, s.HashReport().OpChains
}

func runWithStore(t *testing.T, store *ckptstore.Store, fp *faults.Plan) *engine.Result {
	t.Helper()
	plan, chains := compileCkptSpec(t)
	run, err := engine.NewRun(plan, engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true,
		Checkpoint: true, Faults: fp,
		Ckpts: store, CkptChains: chains,
	}, 0)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	res, err := run.RunToCompletion()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func openTestStore(t *testing.T) *ckptstore.Store {
	t.Helper()
	store := ckptstore.New(filepath.Join(t.TempDir(), "ckpt"))
	if err := store.Open(); err != nil {
		t.Fatalf("store open: %v", err)
	}
	t.Cleanup(func() { store.Close() })
	return store
}

// TestMirrorWritesContentAddressedEntries checks that anticipatory
// checkpoints land in the store under spec chain keys, and that two runs
// of the same spec share every entry (content addressing).
func TestMirrorWritesContentAddressedEntries(t *testing.T) {
	store := openTestStore(t)
	runWithStore(t, store, &faults.Plan{})
	keys, err := store.Keys()
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(keys) == 0 {
		t.Fatal("no checkpoint entries mirrored")
	}
	for _, k := range keys {
		if !store.Has(k) {
			t.Fatalf("entry %s does not verify", k)
		}
	}
	// A second run of the same spec must re-key the exact same entries.
	runWithStore(t, store, &faults.Plan{})
	again, err := store.Keys()
	if err != nil {
		t.Fatalf("Keys: %v", err)
	}
	if len(again) != len(keys) {
		t.Fatalf("entry set changed across identical runs: %d then %d", len(keys), len(again))
	}
}

// TestCorruptCheckpointRederivesNotFails is the acceptance-criterion
// core: bit-flipped checkpoint entries loaded during crash recovery are
// treated as misses and re-derived by lineage — the run still succeeds
// with the same output as a clean faulted run.
func TestCorruptCheckpointRederivesNotFails(t *testing.T) {
	crash := []faults.Crash{{Node: 0, AfterStages: 2}}
	clean := runWithStore(t, openTestStore(t), &faults.Plan{Crashes: crash})

	store := openTestStore(t)
	flips := []faults.CkptFlip{{Load: 0, Bit: 9}, {Load: 1, Bit: 100}}
	res := runWithStore(t, store, &faults.Plan{Crashes: crash, CkptFlips: flips})
	if res.Output == nil || clean.Output == nil {
		t.Fatal("missing outputs")
	}
	if got, want := res.Output.NumRows(), clean.Output.NumRows(); got != want {
		t.Fatalf("corrupt-checkpoint run output %d rows, clean faulted run %d", got, want)
	}
	if res.Metrics.PartitionsRederived <= clean.Metrics.PartitionsRederived {
		t.Fatalf("corruption did not add re-derivation: %d vs %d partitions",
			res.Metrics.PartitionsRederived, clean.Metrics.PartitionsRederived)
	}
	if res.Metrics.FaultsInjected <= clean.Metrics.FaultsInjected {
		t.Fatalf("ckpt flips not recorded as fault events: %d vs %d",
			res.Metrics.FaultsInjected, clean.Metrics.FaultsInjected)
	}
}

// TestPermanentCrashVerifiesEvacuatedCopies drives the permanent-loss
// path: corrupt entries of a dead node's checkpointed partitions must be
// re-derived instead of rebalanced.
func TestPermanentCrashVerifiesEvacuatedCopies(t *testing.T) {
	crash := []faults.Crash{{Node: 1, AfterStages: 2, Permanent: true}}
	clean := runWithStore(t, openTestStore(t), &faults.Plan{Crashes: crash})
	store := openTestStore(t)
	res := runWithStore(t, store, &faults.Plan{
		Crashes:   crash,
		CkptFlips: []faults.CkptFlip{{Load: 0, Bit: 3}},
	})
	if got, want := res.Output.NumRows(), clean.Output.NumRows(); got != want {
		t.Fatalf("output %d rows, want %d", got, want)
	}
	moved := res.Metrics.PartitionsRederived + res.Metrics.PartitionsRebalanced
	if moved == 0 {
		t.Fatal("permanent crash moved no partitions")
	}
	if res.Metrics.PartitionsRebalanced >= clean.Metrics.PartitionsRebalanced {
		t.Fatalf("corrupt copy still rebalanced: %d vs clean %d",
			res.Metrics.PartitionsRebalanced, clean.Metrics.PartitionsRebalanced)
	}
}
