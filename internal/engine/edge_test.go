package engine_test

import (
	"testing"

	"metadataflow/internal/dataset"
	"metadataflow/internal/engine"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/sim"
)

// TestDiamondMergeExecution: a transform with two predecessors (built with
// Merge) receives both inputs in edge order and the engine accounts both.
func TestDiamondMergeExecution(t *testing.T) {
	b := mdf.NewBuilder()
	src := b.Source("src", mdf.SourceFunc(func() *dataset.Dataset {
		return dataset.FromRows("in", intRows(100), 4, 1<<16)
	}), 0.001)
	left := src.Then("evens", mdf.FilterRows("e", func(r dataset.Row) bool {
		return r.(int)%2 == 0
	}), 0.001)
	right := src.Then("big", mdf.FilterRows("b", func(r dataset.Row) bool {
		return r.(int) >= 90
	}), 0.001)
	merged := left.Merge("union", func(ins []*dataset.Dataset) (*dataset.Dataset, error) {
		out := dataset.Concat("union", ins...)
		fresh := dataset.New("union")
		for _, p := range out.Parts {
			fresh.Parts = append(fresh.Parts, &dataset.Partition{Rows: p.Rows, VirtualBytes: p.VirtualBytes})
		}
		return fresh, nil
	}, 0.002, right)
	merged.Then("sink", mdf.Identity("out"), 0.001)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Execute(g, engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 50 evens + 10 big (overlap kept twice: a concatenation, not a set
	// union).
	if got := res.Output.NumRows(); got != 60 {
		t.Errorf("merged rows = %d, want 60", got)
	}
}

// TestEmptySelectionPropagates: when no branch passes the selection, the
// choose produces an empty dataset and downstream stages still run.
func TestEmptySelectionPropagates(t *testing.T) {
	g := buildFilterMDF(t, mdf.Threshold(1e9, false), mdf.SizeEvaluator())
	res, err := engine.Execute(g, engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output == nil {
		t.Fatal("no output dataset")
	}
	if res.Output.NumRows() != 0 {
		t.Errorf("output rows = %d, want 0 (nothing selected)", res.Output.NumRows())
	}
}

// TestPinReusedSurvivesPressure: with PinReused, the dataset feeding an
// explore stays in memory under pressure, so branch reads keep hitting.
func TestPinReusedSurvivesPressure(t *testing.T) {
	build := func() *graph.Graph {
		b := mdf.NewBuilder()
		src := b.Source("src", mdf.SourceFunc(func() *dataset.Dataset {
			d := dataset.FromRows("in", intRows(1000), 4, 1)
			d.SetVirtualBytes(3 << 30) // large relative to the 1 GB budget
			return d
		}), 0.001)
		specs := make([]mdf.BranchSpec, 6)
		for i := range specs {
			specs[i] = mdf.BranchSpec{Label: string(rune('a' + i)), Hint: float64(i)}
		}
		out := src.Explore("e", specs, mdf.NewChooser(mdf.SizeEvaluator(), mdf.Max()),
			func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
				return start.Then("m"+spec.Label, mdf.MapRows("m", 1.0, func(r dataset.Row) dataset.Row {
					return r
				}), 0.001)
			})
		out.Then("sink", mdf.Identity("out"), 0.001)
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	run := func(pin bool) *engine.Result {
		res, err := engine.Execute(build(), engine.Options{
			Cluster: testCluster(1 << 30), Policy: memorymgr.LRU,
			Scheduler: scheduler.BFS(), PinReused: pin,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unpinned := run(false)
	pinned := run(true)
	if pinned.Metrics.Mem.HitRatio() < unpinned.Metrics.Mem.HitRatio() {
		t.Errorf("pinning should not lower the hit ratio: %0.3f vs %0.3f",
			pinned.Metrics.Mem.HitRatio(), unpinned.Metrics.Mem.HitRatio())
	}
	if pinned.CompletionTime() > unpinned.CompletionTime() {
		t.Errorf("pinning the reused input should not slow the run: %0.1fs vs %0.1fs",
			pinned.CompletionTime(), unpinned.CompletionTime())
	}
}

// TestOversizeWorkingSet: a stage whose single partition exceeds worker
// memory still completes (the allocator routes it via disk).
func TestOversizeWorkingSet(t *testing.T) {
	b := mdf.NewBuilder()
	src := b.Source("src", mdf.SourceFunc(func() *dataset.Dataset {
		d := dataset.FromRows("in", intRows(10), 1, 1) // one partition
		d.SetVirtualBytes(8 << 30)                     // 8 GB partition vs 1 GB budget
		return d
	}), 0.001)
	// Wide boundaries force the oversize partition through the allocator.
	mid := src.ThenWide("m", mdf.Identity("m"), 0.001)
	mid.ThenWide("sink", mdf.Identity("out"), 0.001)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Execute(g, engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.LRU,
		Scheduler: scheduler.BFS(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.NumRows() != 10 {
		t.Errorf("rows = %d, want 10", res.Output.NumRows())
	}
	if res.Metrics.Mem.HitRatio() >= 1 {
		t.Error("oversize partitions must be disk accesses")
	}
}

func TestTaskBreakdown(t *testing.T) {
	d := dataset.FromRows("d", intRows(100), 6, 100)
	tasks := engine.TaskBreakdown("T1", 4, []*dataset.Dataset{d, nil})
	if len(tasks) != 4 {
		t.Fatalf("tasks = %d, want 4", len(tasks))
	}
	// 6 partitions over 4 workers round-robin: nodes 0,1 get 2, nodes 2,3 get 1.
	if tasks[0].Partitions != 2 || tasks[2].Partitions != 1 {
		t.Errorf("partition spread wrong: %+v", tasks)
	}
	var total sim.Bytes
	for _, tk := range tasks {
		total += tk.InputBytes
	}
	if total.Int64() != d.VirtualBytes() {
		t.Errorf("task bytes = %d, want %d", total, d.VirtualBytes())
	}
	if engine.TaskBreakdown("T1", 0, nil) != nil {
		t.Error("zero workers should yield no tasks")
	}
}

func TestSpillReportAttributesDatasets(t *testing.T) {
	// Build a run with memory pressure and check the spill report names the
	// heavy datasets, largest first.
	b := mdf.NewBuilder()
	src := b.Source("src", mdf.SourceFunc(func() *dataset.Dataset {
		d := dataset.FromRows("in", intRows(100), 4, 1)
		d.SetVirtualBytes(3 << 30)
		return d
	}), 0.001)
	specs := make([]mdf.BranchSpec, 5)
	for i := range specs {
		specs[i] = mdf.BranchSpec{Label: string(rune('a' + i)), Hint: float64(i)}
	}
	out := src.Explore("e", specs, mdf.NewChooser(mdf.SizeEvaluator(), mdf.Max()),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			return start.Then("m"+spec.Label, mdf.Identity("m"), 0.001)
		})
	out.Then("sink", mdf.Identity("out"), 0.001)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := graph.BuildPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	run, err := engine.NewRun(plan, engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.LRU,
		Scheduler: scheduler.BFS(),
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	report := run.SpillReport(3)
	if len(report) == 0 {
		t.Fatal("pressure run produced no spill entries")
	}
	if len(report) > 3 {
		t.Fatalf("top-3 report has %d entries", len(report))
	}
	for i := 1; i < len(report); i++ {
		if report[i].Bytes > report[i-1].Bytes {
			t.Fatal("spill report not sorted by volume")
		}
	}
	if report[0].String() == "" {
		t.Error("empty entry string")
	}
}

// TestSpeculativeMitigatesStraggler: with speculation, a straggler's impact
// drops from ~slow-factor to ~lost-capacity share, and results are
// unchanged.
func TestSpeculativeMitigatesStraggler(t *testing.T) {
	run := func(slow float64, speculative bool) *engine.Result {
		g := buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator())
		cl := testCluster(1 << 30)
		cl.Nodes[0].SlowFactor = slow
		plan, err := graph.BuildPlan(g)
		if err != nil {
			t.Fatal(err)
		}
		r, err := engine.NewRun(plan, engine.Options{
			Cluster: cl, Policy: memorymgr.AMM,
			Scheduler: scheduler.BAS(nil), Incremental: true,
			Speculative: speculative,
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunToCompletion()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(1, false)
	plain := run(4, false)
	spec := run(4, true)
	if spec.Output.NumRows() != clean.Output.NumRows() {
		t.Fatal("speculation changed the result")
	}
	if spec.CompletionTime() >= plain.CompletionTime() {
		t.Errorf("speculation (%0.2fs) should beat no mitigation (%0.2fs)",
			spec.CompletionTime(), plain.CompletionTime())
	}
	// Speculation rebalances compute only; I/O stays bound to the
	// straggler's data placement, so the mitigated run lands between the
	// lost-capacity share and the unmitigated slow factor.
	if spec.CompletionTime() > 3*clean.CompletionTime() {
		t.Errorf("mitigated run (%0.2fs) too slow vs clean (%0.2fs)",
			spec.CompletionTime(), clean.CompletionTime())
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[engine.EventKind]string{
		engine.EventStage:      "stage",
		engine.EventChooseEval: "eval",
		engine.EventChoose:     "choose",
		engine.EventPruned:     "pruned",
	} {
		if k.String() != want {
			t.Errorf("EventKind %d = %q, want %q", int(k), k.String(), want)
		}
	}
}

// TestAMMConsultsFutureAccesses: under memory pressure with AMM, the engine
// feeds acc(d) to the allocator and the reused explore input survives
// eviction better than under LRU, yielding a higher hit ratio.
func TestAMMConsultsFutureAccesses(t *testing.T) {
	build := func() *graph.Graph {
		b := mdf.NewBuilder()
		src := b.Source("src", mdf.SourceFunc(func() *dataset.Dataset {
			d := dataset.FromRows("in", intRows(500), 4, 1)
			d.SetVirtualBytes(2 << 30)
			return d
		}), 0.001)
		specs := make([]mdf.BranchSpec, 8)
		for i := range specs {
			specs[i] = mdf.BranchSpec{Label: string(rune('a' + i)), Hint: float64(i)}
		}
		out := src.Explore("e", specs, mdf.NewChooser(mdf.SizeEvaluator(), mdf.Max()),
			func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
				return start.Then("m"+spec.Label,
					mdf.MapRows("m", 1.0, func(r dataset.Row) dataset.Row { return r }), 0.001)
			})
		out.Then("sink", mdf.Identity("out"), 0.001)
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	run := func(pol memorymgr.PolicyKind) *engine.Result {
		res, err := engine.Execute(build(), engine.Options{
			Cluster: testCluster(1 << 30), Policy: pol,
			Scheduler: scheduler.BFS(), // BFS piles up branch outputs
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lru := run(memorymgr.LRU)
	amm := run(memorymgr.AMM)
	if amm.Metrics.Mem.Evictions == 0 {
		t.Fatal("no memory pressure: test is vacuous")
	}
	if amm.Metrics.Mem.HitRatio() < lru.Metrics.Mem.HitRatio() {
		t.Errorf("AMM hit ratio (%0.3f) should be >= LRU (%0.3f)",
			amm.Metrics.Mem.HitRatio(), lru.Metrics.Mem.HitRatio())
	}
	if amm.CompletionTime() > lru.CompletionTime() {
		t.Errorf("AMM (%0.1fs) should not be slower than LRU (%0.1fs) on a fan-out job",
			amm.CompletionTime(), lru.CompletionTime())
	}
}

// TestRunAccessors covers the introspection surface of a stepped run.
func TestRunAccessors(t *testing.T) {
	g := buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator())
	plan, err := graph.BuildPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	run, err := engine.NewRun(plan, engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if run.Done() {
		t.Fatal("fresh run claims done")
	}
	if !run.Step() {
		t.Fatal("first step ended the run")
	}
	if run.Now() < 0 {
		t.Fatal("negative virtual time")
	}
	if run.LiveDatasets() < 1 {
		t.Fatal("no live datasets after first stage")
	}
	if run.Allocator(0) == nil {
		t.Fatal("nil allocator")
	}
	// Drive to completion and verify terminal state.
	for run.Step() {
	}
	if !run.Done() || run.Err() != nil {
		t.Fatalf("run not cleanly done: %v", run.Err())
	}
	// The AMM access counter reports zero for unknown partitions.
	if got := run.FutureAccesses(dataset.PartKey{Dataset: 999999, Index: 0}); got != 0 {
		t.Errorf("unknown partition future accesses = %d, want 0", got)
	}
}
