package engine_test

import (
	"fmt"
	"testing"

	"metadataflow/internal/dataset"
	"metadataflow/internal/engine"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
)

// buildConvexMDF builds an MDF whose branch quality is concave over the
// hint: branch h keeps 1000 - 60·|h-8| rows of a 1000-row input, peaking at
// h=8. The selector keeps the first branch with >= 990 rows, which only the
// peak satisfies.
func buildConvexMDF(t *testing.T) *graph.Graph {
	t.Helper()
	b := mdf.NewBuilder()
	src := b.Source("src", mdf.SourceFunc(func() *dataset.Dataset {
		return dataset.FromRows("in", intRows(1000), 4, 1<<18)
	}), 0.001)
	specs := make([]mdf.BranchSpec, 17)
	for i := range specs {
		specs[i] = mdf.BranchSpec{Label: fmt.Sprintf("h=%d", i), Hint: float64(i)}
	}
	chooser := mdf.NewChooser(mdf.SizeEvaluator(), mdf.KThreshold(1, 990, false))
	out := src.Explore("convex", specs, chooser,
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			h := int(spec.Hint)
			dist := h - 8
			if dist < 0 {
				dist = -dist
			}
			keep := 1000 - 60*dist
			return start.Then("f"+spec.Label, mdf.FilterRows("f", func(r dataset.Row) bool {
				return r.(int) < keep
			}), 0.002)
		})
	out.Then("sink", mdf.Identity("result"), 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func evalsWith(t *testing.T, g *graph.Graph, pol scheduler.Policy) int {
	t.Helper()
	res, err := engine.Execute(g, engine.Options{
		Cluster:     testCluster(1 << 30),
		Policy:      memorymgr.AMM,
		Scheduler:   pol,
		Incremental: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.NumRows() != 1000 {
		t.Fatalf("wrong branch selected: %d rows, want 1000", res.Output.NumRows())
	}
	return res.Metrics.ChooseEvals
}

// TestBinarySearchHintConverges: probing via a convex-aware bracket search
// finds the only qualifying branch in far fewer evaluator invocations than
// definition order (§4.2(i): "binary search" over a convex evaluator).
func TestBinarySearchHintConverges(t *testing.T) {
	defOrder := evalsWith(t, buildConvexMDF(t), scheduler.BAS(nil))
	binSearch := evalsWith(t, buildConvexMDF(t), scheduler.BAS(scheduler.BinarySearchHint(true)))
	if defOrder != 9 {
		t.Errorf("definition order evals = %d, want 9 (branches 0..8)", defOrder)
	}
	if binSearch >= defOrder {
		t.Errorf("binary-search evals = %d, want < %d", binSearch, defOrder)
	}
	if binSearch > 5 {
		t.Errorf("binary-search evals = %d, want <= 5 (extremes + bracketing)", binSearch)
	}
}

// TestModelHintConverges: the quadratic-regression hint also beats
// definition order on a concave landscape (§4.2(iii)).
func TestModelHintConverges(t *testing.T) {
	defOrder := evalsWith(t, buildConvexMDF(t), scheduler.BAS(nil))
	model := evalsWith(t, buildConvexMDF(t), scheduler.BAS(scheduler.ModelHint(true)))
	if model >= defOrder {
		t.Errorf("model-hint evals = %d, want < %d", model, defOrder)
	}
}
