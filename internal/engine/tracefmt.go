package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"metadataflow/internal/sim"
)

// This file renders execution timelines for humans and tools: a plain-text
// Gantt view for terminals and the Chrome Trace Event Format (the JSON
// consumed by chrome://tracing and https://ui.perfetto.dev) for interactive
// inspection.

// WriteText renders the timeline as an aligned text table.
func WriteText(w io.Writer, timeline []StageEvent) error {
	if len(timeline) == 0 {
		_, err := fmt.Fprintln(w, "(empty timeline; run with tracing enabled)")
		return err
	}
	width := len("stage")
	for _, ev := range timeline {
		if len(ev.Stage) > width {
			width = len(ev.Stage)
		}
	}
	if _, err := fmt.Fprintf(w, "%10s  %10s  %-7s %-*s\n", "start", "end", "kind", width, "stage"); err != nil {
		return err
	}
	for _, ev := range timeline {
		if _, err := fmt.Fprintf(w, "%10.2f  %10.2f  %-7s %-*s\n",
			ev.Start, ev.End, ev.Kind, width, ev.Stage); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome Trace Event Format. Structs (not
// maps) keep JSON field order, and so the serialized bytes, deterministic.
type chromeEvent struct {
	Name  string `json:"name"`
	Cat   string `json:"cat,omitempty"`
	Phase string `json:"ph"`
	// Ts and Dur are in microseconds; we map one virtual second to one
	// millisecond so traces of thousand-second jobs stay navigable.
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur,omitempty"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Args *chromeMetadata `json:"args,omitempty"`
}

// chromeMetadata is the args payload of "M" metadata events.
type chromeMetadata struct {
	Name string `json:"name"`
}

// chromeTraceFile is the top-level trace JSON document.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// timelineKinds returns the event kinds present in the timeline: known
// kinds first in declaration order, then any unknown kinds ascending.
func timelineKinds(timeline []StageEvent) []EventKind {
	present := map[EventKind]bool{}
	for _, ev := range timeline {
		present[ev.Kind] = true
	}
	known := []EventKind{EventStage, EventChooseEval, EventChoose, EventPruned}
	kinds := make([]EventKind, 0, len(present))
	for _, k := range known {
		if present[k] {
			kinds = append(kinds, k)
			delete(present, k)
		}
	}
	rest := make([]EventKind, 0, len(present))
	for k := range present {
		rest = append(rest, k)
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	return append(kinds, rest...)
}

// WriteChromeTrace renders the timeline in Chrome Trace Event Format.
// Events of each kind go to their own track (tid), labeled with a
// thread_name metadata event so viewers show the kind instead of a bare
// number; instantaneous pruning decisions become instant events. Tracks are
// derived from the kinds actually present, so a new EventKind gets its own
// labeled track rather than collapsing onto tid 0.
//
// This is the legacy single-process view of Result.Timeline; the obs
// package's Recorder renders the richer multi-track per-node trace.
func WriteChromeTrace(w io.Writer, timeline []StageEvent) error {
	const usPerVirtualSecond = 1000.0
	tids := map[EventKind]int{}
	events := make([]chromeEvent, 0, len(timeline)+4)
	events = append(events, chromeEvent{
		Name: "process_name", Phase: "M", Pid: 1, Tid: 0,
		Args: &chromeMetadata{Name: "job"},
	})
	for i, k := range timelineKinds(timeline) {
		tids[k] = i + 1
		events = append(events, chromeEvent{
			Name: "thread_name", Phase: "M", Pid: 1, Tid: i + 1,
			Args: &chromeMetadata{Name: k.String()},
		})
	}
	for _, ev := range timeline {
		ce := chromeEvent{
			Name: ev.Stage,
			Cat:  ev.Kind.String(),
			Ts:   ev.Start.Seconds() * usPerVirtualSecond,
			Pid:  1,
			Tid:  tids[ev.Kind],
		}
		if ev.End > ev.Start {
			ce.Phase = "X" // complete event
			ce.Dur = (ev.End - ev.Start).Seconds() * usPerVirtualSecond
		} else {
			ce.Phase = "i" // instant event
		}
		events = append(events, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTraceFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"note": "1 ms of trace time = 1 virtual cluster second",
		},
	})
}

// SummarizeTimeline aggregates the timeline into per-kind totals, a quick
// profile of where virtual time went. Every kind present is reported,
// including kinds this version does not know by name.
func SummarizeTimeline(timeline []StageEvent) string {
	totals := map[EventKind]sim.VTime{}
	counts := map[EventKind]int{}
	for _, ev := range timeline {
		totals[ev.Kind] += ev.End - ev.Start
		counts[ev.Kind]++
	}
	var b strings.Builder
	for _, k := range timelineKinds(timeline) {
		fmt.Fprintf(&b, "%-7s %4d events  %10.2f virtual seconds (busy, overlapping)\n",
			k, counts[k], totals[k])
	}
	return b.String()
}
