package engine

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"metadataflow/internal/sim"
)

// This file renders execution timelines for humans and tools: a plain-text
// Gantt view for terminals and the Chrome Trace Event Format (the JSON
// consumed by chrome://tracing and https://ui.perfetto.dev) for interactive
// inspection.

// WriteText renders the timeline as an aligned text table.
func WriteText(w io.Writer, timeline []StageEvent) error {
	if len(timeline) == 0 {
		_, err := fmt.Fprintln(w, "(empty timeline; run with tracing enabled)")
		return err
	}
	width := len("stage")
	for _, ev := range timeline {
		if len(ev.Stage) > width {
			width = len(ev.Stage)
		}
	}
	if _, err := fmt.Fprintf(w, "%10s  %10s  %-7s %-*s\n", "start", "end", "kind", width, "stage"); err != nil {
		return err
	}
	for _, ev := range timeline {
		if _, err := fmt.Fprintf(w, "%10.2f  %10.2f  %-7s %-*s\n",
			ev.Start, ev.End, ev.Kind, width, ev.Stage); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome Trace Event Format.
type chromeEvent struct {
	Name  string `json:"name"`
	Cat   string `json:"cat"`
	Phase string `json:"ph"`
	// Ts and Dur are in microseconds; we map one virtual second to one
	// millisecond so traces of thousand-second jobs stay navigable.
	Ts  float64 `json:"ts"`
	Dur float64 `json:"dur,omitempty"`
	Pid int     `json:"pid"`
	Tid int     `json:"tid"`
}

// WriteChromeTrace renders the timeline in Chrome Trace Event Format.
// Events of each kind go to their own track (tid), instantaneous pruning
// decisions become instant events.
func WriteChromeTrace(w io.Writer, timeline []StageEvent) error {
	const usPerVirtualSecond = 1000.0
	tids := map[EventKind]int{
		EventStage:      1,
		EventChooseEval: 2,
		EventChoose:     3,
		EventPruned:     4,
	}
	events := make([]chromeEvent, 0, len(timeline))
	for _, ev := range timeline {
		ce := chromeEvent{
			Name: ev.Stage,
			Cat:  ev.Kind.String(),
			Ts:   ev.Start.Seconds() * usPerVirtualSecond,
			Pid:  1,
			Tid:  tids[ev.Kind],
		}
		if ev.End > ev.Start {
			ce.Phase = "X" // complete event
			ce.Dur = (ev.End - ev.Start).Seconds() * usPerVirtualSecond
		} else {
			ce.Phase = "i" // instant event
		}
		events = append(events, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
		"otherData": map[string]string{
			"note": "1 ms of trace time = 1 virtual cluster second",
		},
	})
}

// SummarizeTimeline aggregates the timeline into per-kind totals, a quick
// profile of where virtual time went.
func SummarizeTimeline(timeline []StageEvent) string {
	totals := map[EventKind]sim.VTime{}
	counts := map[EventKind]int{}
	for _, ev := range timeline {
		totals[ev.Kind] += ev.End - ev.Start
		counts[ev.Kind]++
	}
	var b strings.Builder
	for _, k := range []EventKind{EventStage, EventChooseEval, EventChoose, EventPruned} {
		if counts[k] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-7s %4d events  %10.2f virtual seconds (busy, overlapping)\n",
			k, counts[k], totals[k])
	}
	return b.String()
}
