package engine_test

import (
	"bytes"
	"testing"

	"metadataflow/internal/engine"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/obs"
	"metadataflow/internal/scheduler"
)

func TestProgressTracksBranches(t *testing.T) {
	g := buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator())
	plan, err := graph.BuildPlan(g)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	run, err := engine.NewRun(plan, engine.Options{
		Cluster:     testCluster(1 << 30),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
	}, 0)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}

	p := run.Progress()
	if p.Done || p.StagesExecuted != 0 {
		t.Fatalf("fresh run progress: %+v", p)
	}
	if len(p.Branches) != 3 {
		t.Fatalf("branches = %d, want 3", len(p.Branches))
	}
	for _, bp := range p.Branches {
		if bp.State != engine.BranchPending || bp.Completion != 0 {
			t.Fatalf("fresh branch not pending: %+v", bp)
		}
	}

	// Step until at least one branch has been scored mid-run.
	sawPartial := false
	for run.Step() {
		mid := run.Progress()
		if mid.StagesExecuted > 0 && !mid.Done {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("never observed a mid-run progress state")
	}

	final := run.Progress()
	if !final.Done {
		t.Fatal("final progress not done")
	}
	if final.StagesTotal != len(plan.Stages) {
		t.Fatalf("stagesTotal = %d, want %d", final.StagesTotal, len(plan.Stages))
	}
	scored := 0
	for _, bp := range final.Branches {
		if bp.Completion != 1 {
			t.Fatalf("terminal branch not complete: %+v", bp)
		}
		switch bp.State {
		case engine.BranchScored:
			scored++
		case engine.BranchPruned:
		default:
			t.Fatalf("terminal branch in state %q: %+v", bp.State, bp)
		}
	}
	if scored == 0 {
		t.Fatal("no branch ended scored")
	}
}

// TestSeriesArtifactDeterministic pins the acceptance criterion: two
// same-seed runs produce byte-identical mdf.series/v1 artifacts, and the
// artifact carries the branch-level series the progress surface streams.
func TestSeriesArtifactDeterministic(t *testing.T) {
	var docs [2]bytes.Buffer
	for i := range docs {
		rec, _ := recordedRun(t, engine.Options{
			Cluster:     testCluster(1 << 30),
			Policy:      memorymgr.AMM,
			Scheduler:   scheduler.BAS(nil),
			Incremental: true,
		})
		if err := rec.Series(obs.DefaultBucketSec).WriteJSON(&docs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(docs[0].Bytes(), docs[1].Bytes()) {
		t.Fatalf("series artifact not byte-identical across same-seed runs:\n%s\nvs\n%s",
			docs[0].String(), docs[1].String())
	}

	rec, _ := recordedRun(t, engine.Options{
		Cluster:     testCluster(1 << 30),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
	})
	doc := rec.Series(obs.DefaultBucketSec)
	want := map[string]bool{
		"engine.branch_score.s0.b2":    false, // highest hint wins under Max
		"engine.branch_progress.s0.b0": false,
		"engine.branch_active.s0.b0":   false,
		"sched.rank_churn":             false,
		"sched.queue_depth":            false,
		"util.cpu":                     false,
		"lat.stage":                    false,
	}
	for _, s := range doc.Series {
		if _, ok := want[s.Name]; ok {
			want[s.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("series %q missing from artifact", name)
		}
	}

	// Every opened branch interval must have been closed: a still-open
	// interval serialises with End == Start, but more importantly the
	// recorded intervals must cover all three branches.
	ivs := rec.Intervals()
	branches := map[string]bool{}
	for _, iv := range ivs {
		branches[iv.Name] = true
		if iv.End < iv.Start {
			t.Errorf("interval ends before start: %+v", iv)
		}
	}
	for _, name := range []string{
		"engine.branch_active.s0.b0",
		"engine.branch_active.s0.b1",
		"engine.branch_active.s0.b2",
	} {
		if !branches[name] {
			t.Errorf("missing branch interval %q (have %v)", name, branches)
		}
	}
}
