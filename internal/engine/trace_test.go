package engine_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"metadataflow/internal/dataset"
	"metadataflow/internal/engine"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/sim"
)

func executeTraced(t *testing.T, g *graph.Graph, opts engine.Options) *engine.Result {
	t.Helper()
	plan, err := graph.BuildPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	run, err := engine.NewRun(plan, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.RunToCompletion()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTimelineRecorded(t *testing.T) {
	g := buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator())
	res := executeTraced(t, g, engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true, Trace: true,
	})
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline recorded with Trace on")
	}
	kinds := map[engine.EventKind]int{}
	for _, ev := range res.Timeline {
		kinds[ev.Kind]++
		if ev.End < ev.Start {
			t.Errorf("event %s ends before it starts: %v < %v", ev.Stage, ev.End, ev.Start)
		}
	}
	if kinds[engine.EventStage] == 0 || kinds[engine.EventChooseEval] != 3 || kinds[engine.EventChoose] != 1 {
		t.Errorf("unexpected event mix: %v", kinds)
	}
}

func TestTimelineOffByDefault(t *testing.T) {
	g := buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator())
	res := executeTraced(t, g, engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil),
	})
	if res.Timeline != nil {
		t.Fatal("timeline recorded without Trace")
	}
}

func TestTimelineRecordsPruning(t *testing.T) {
	g := buildFilterMDF(t, mdf.KThreshold(1, 50, false), mdf.SizeEvaluator())
	res := executeTraced(t, g, engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true, Trace: true,
	})
	pruned := 0
	for _, ev := range res.Timeline {
		if ev.Kind == engine.EventPruned {
			pruned++
			if ev.Start != ev.End {
				t.Error("pruning events must be instantaneous")
			}
		}
	}
	if pruned != 2 {
		t.Errorf("pruned events = %d, want 2", pruned)
	}
}

// TestWideDependencyChargesShuffle: a wide dependency moves (W-1)/W of the
// data over the network, so the same pipeline with a wide boundary takes
// longer than with a narrow one.
func TestWideDependencyChargesShuffle(t *testing.T) {
	build := func(wide bool) *graph.Graph {
		b := mdf.NewBuilder()
		src := b.Source("src", mdf.SourceFunc(func() *dataset.Dataset {
			d := dataset.FromRows("in", intRows(1000), 4, 1<<20)
			d.SetVirtualBytes(4 << 30)
			return d
		}), 0.001)
		var next *mdf.Node
		if wide {
			next = src.ThenWide("groupby", mdf.Identity("g"), 0.001)
		} else {
			next = src.Then("map", mdf.Identity("g"), 0.001)
		}
		next.Then("sink", mdf.Identity("out"), 0.001)
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	opts := func() engine.Options {
		return engine.Options{
			Cluster: testCluster(16 << 30), Policy: memorymgr.LRU,
			Scheduler: scheduler.BFS(),
		}
	}
	narrow, err := engine.Execute(build(false), opts())
	if err != nil {
		t.Fatal(err)
	}
	wide, err := engine.Execute(build(true), opts())
	if err != nil {
		t.Fatal(err)
	}
	if wide.CompletionTime() <= narrow.CompletionTime() {
		t.Errorf("wide dependency (%0.2fs) should cost more than narrow (%0.2fs)",
			wide.CompletionTime(), narrow.CompletionTime())
	}
	// Expected shuffle time: 3/4 of each worker's 1 GB share at 1 Gbps.
	cfg := testCluster(1).Config
	expected := cfg.NetSec(sim.Bytes(float64(1<<30) * 0.75))
	gap := wide.CompletionTime() - narrow.CompletionTime()
	if gap < expected*0.5 || gap > expected*2 {
		t.Errorf("shuffle gap = %0.2fs, expected around %0.2fs", gap, expected)
	}
}

func TestTraceFormatters(t *testing.T) {
	g := buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator())
	res := executeTraced(t, g, engine.Options{
		Cluster: testCluster(1 << 30), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true, Trace: true,
	})
	var text strings.Builder
	if err := engine.WriteText(&text, res.Timeline); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "stage") || !strings.Contains(text.String(), "eval") {
		t.Errorf("text timeline missing content:\n%s", text.String())
	}
	var buf bytes.Buffer
	if err := engine.WriteChromeTrace(&buf, res.Timeline); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			Ts    float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	data := 0
	for _, ev := range doc.TraceEvents {
		if ev.Phase != "M" {
			data++
		}
	}
	if data != len(res.Timeline) {
		t.Errorf("chrome data events = %d, want %d", data, len(res.Timeline))
	}
	summary := engine.SummarizeTimeline(res.Timeline)
	if !strings.Contains(summary, "stage") {
		t.Errorf("summary missing stage line:\n%s", summary)
	}
	// Empty timeline renders a placeholder, not an error.
	var empty strings.Builder
	if err := engine.WriteText(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if empty.Len() == 0 {
		t.Error("empty timeline should render a note")
	}
}
