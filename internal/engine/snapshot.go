package engine

import (
	"metadataflow/internal/obs"
)

// Snapshot aggregates the run's metrics into the schema-stable telemetry
// snapshot (obs.SnapshotSchema): engine counters, memory-manager totals,
// fault statistics, a stage-duration histogram, per-node allocator state,
// and the injected-fault history. It is valid at any point of the run; the
// usual call site is after completion (mdfrun -metrics). Everything is
// emitted in deterministic order (Normalize sorts by name; stages iterate
// in plan order; fault events keep injection order), so serializing the
// snapshot of the same seed twice is byte-identical.
func (r *Run) Snapshot() *obs.Snapshot {
	res := r.Result()
	m := res.Metrics

	s := obs.NewSnapshot()
	s.CompletionSec = res.CompletionTime()

	s.AddCounter("engine.stages_executed", int64(m.StagesExecuted))
	s.AddCounter("engine.stages_pruned", int64(m.StagesPruned))
	s.AddCounter("engine.branches_pruned", int64(m.BranchesPruned))
	s.AddCounter("engine.branches_discarded", int64(m.BranchesDiscarded))
	s.AddCounter("engine.datasets_discarded", int64(m.DatasetsDiscarded))
	s.AddCounter("engine.peak_live_datasets", int64(m.PeakLiveDatasets))
	s.AddCounter("engine.choose_evals", int64(m.ChooseEvals))

	s.AddCounter("mem.hits", m.Mem.Hits)
	s.AddCounter("mem.misses", m.Mem.Misses)
	s.AddCounter("mem.bytes_from_mem", m.Mem.BytesFromMem.Int64())
	s.AddCounter("mem.bytes_from_disk", m.Mem.BytesFromDisk.Int64())
	s.AddCounter("mem.evictions", m.Mem.Evictions)
	s.AddCounter("mem.spilled_bytes", m.Mem.SpilledBytes.Int64())
	s.AddCounter("mem.checkpoints", m.Mem.Checkpoints)
	s.AddCounter("mem.checkpointed_bytes", m.Mem.CheckpointedBytes.Int64())
	s.AddCounter("mem.peak_resident_bytes", m.Mem.PeakResidentBytes.Int64())

	// End-of-run residency audit counters: live_partitions is the number of
	// partitions still tracked across all allocators, pinned_partitions the
	// number still pinned. At completion the latter must be zero (pins
	// balance); the chaos accounting oracle checks it through this snapshot.
	pinned, tracked := 0, 0
	for _, a := range r.allocs {
		pinned += a.PinnedParts()
		tracked += a.TrackedParts()
	}
	s.AddCounter("mem.pinned_partitions", int64(pinned))
	s.AddCounter("mem.live_partitions", int64(tracked))

	s.AddCounter("faults.injected", int64(m.FaultsInjected))
	s.AddCounter("faults.node_crashes", int64(m.NodeCrashes))
	s.AddCounter("faults.panics_injected", int64(m.PanicsInjected))
	s.AddCounter("faults.retries", int64(m.Retries))
	s.AddCounter("faults.stages_reexecuted", int64(m.StagesReExecuted))
	s.AddCounter("faults.partitions_rederived", int64(m.PartitionsRederived))
	s.AddCounter("faults.partitions_rebalanced", int64(m.PartitionsRebalanced))
	s.AddCounter("faults.branches_quarantined", int64(m.BranchesQuarantined))
	s.AddCounter("faults.rederived_bytes", m.RederivedBytes.Int64())

	s.AddGauge("engine.compute_sec", m.ComputeSec.Seconds())
	s.AddGauge("faults.recovery_sec", m.RecoverySec.Seconds())
	s.AddGauge("mem.hit_ratio", m.Mem.HitRatio())

	// Stage durations, iterated in plan order (stage IDs are topologically
	// ordered) so histogram totals accumulate deterministically.
	h := obs.NewHistogram("engine.stage_duration", "virtual_seconds",
		[]float64{0.1, 1, 10, 100, 1000})
	for _, st := range r.plan.Stages {
		if r.executed[st.ID] {
			h.Observe(r.stageDur[st.ID].Seconds())
		}
	}
	s.Histograms = append(s.Histograms, *h)

	for i, a := range r.allocs {
		am := a.Metrics()
		s.Nodes = append(s.Nodes, obs.NodeSnapshot{
			ID:                i,
			Alive:             r.opts.Cluster.Alive(i),
			ResidentBytes:     a.Used(),
			CapacityBytes:     a.Capacity(),
			SpilledBytes:      am.SpilledBytes,
			CheckpointedBytes: am.CheckpointedBytes,
			Hits:              am.Hits,
			Misses:            am.Misses,
			Evictions:         am.Evictions,
			Checkpoints:       am.Checkpoints,
		})
	}

	if r.injector != nil {
		for _, ev := range r.injector.History() {
			s.Faults = append(s.Faults, obs.FaultEvent{
				Kind: ev.Kind, Node: ev.Node, Op: ev.Op, Detail: ev.Detail,
			})
		}
	}

	s.Normalize()
	return s
}
