package engine_test

import (
	"strings"
	"testing"

	"metadataflow/internal/engine"
	"metadataflow/internal/faults"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
)

// runAudited executes the filter MDF and returns the run for auditing.
func runAudited(t *testing.T, opts engine.Options) *engine.Run {
	t.Helper()
	g := buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator())
	plan, err := graph.BuildPlan(g)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	run, err := engine.NewRun(plan, opts, 0)
	if err != nil {
		t.Fatalf("NewRun: %v", err)
	}
	if _, err := run.RunToCompletion(); err != nil {
		t.Fatalf("RunToCompletion: %v", err)
	}
	return run
}

func TestAuditsCleanOnFaultFreeRun(t *testing.T) {
	run := runAudited(t, engine.Options{
		Cluster:     testCluster(1 << 30),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
		PinReused:   true,
	})
	if v := run.AuditLineage(); len(v) != 0 {
		t.Errorf("lineage violations on a clean run: %v", v)
	}
	if v := run.AuditAccounting(); len(v) != 0 {
		t.Errorf("accounting violations on a clean run: %v", v)
	}
	sels := run.ChooseSelections()
	if len(sels) != 1 {
		t.Fatalf("choose selections = %v, want one choose stage", sels)
	}
	for _, sel := range sels {
		if len(sel) != 1 {
			t.Errorf("max selection kept %v, want one branch", sel)
		}
	}
}

func TestAuditsCleanAfterFaults(t *testing.T) {
	plan := faults.MustGenerate(faults.GenConfig{
		Seed: 21, Workers: 4, Crashes: 3, Permanent: 1, EvalPanics: 1, MaxStage: 4,
	})
	run := runAudited(t, engine.Options{
		Cluster:     testCluster(16 << 20), // small: evictions + reloads under faults
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
		PinReused:   true,
		Faults:      plan,
	})
	if run.Result().Metrics.NodeCrashes == 0 {
		t.Fatal("fault plan injected no crashes; the audit exercises nothing")
	}
	if v := run.AuditLineage(); len(v) != 0 {
		t.Errorf("lineage violations after recovery: %v", v)
	}
	if v := run.AuditAccounting(); len(v) != 0 {
		t.Errorf("accounting violations after recovery: %v", v)
	}
}

func TestNewRunRejectsNegativeMemory(t *testing.T) {
	g := buildFilterMDF(t, mdf.Max(), mdf.SizeEvaluator())
	plan, err := graph.BuildPlan(g)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	_, err = engine.NewRun(plan, engine.Options{
		Cluster:      testCluster(1 << 30),
		MemPerWorker: -1,
		Scheduler:    scheduler.BAS(nil),
	}, 0)
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("err = %v, want negative-budget rejection", err)
	}
}

// panickySelector is a malformed user selection function: its session panics
// on the first score offered. The engine must fail the run with an error
// rather than let the panic kill the process — a chaos sweep feeding
// generated workloads depends on that isolation.
type panickySelector struct{}

func (panickySelector) Name() string             { return "panicky" }
func (panickySelector) Associative() bool        { return false }
func (panickySelector) NonExhaustive() bool      { return false }
func (panickySelector) Better(a, b float64) bool { return a > b }
func (panickySelector) NewSession(total int) graph.ChooseSession {
	return panickySession{}
}

type panickySession struct{}

func (panickySession) Offer(branch int, score float64) ([]int, bool) {
	panic("selection function bug")
}
func (panickySession) Selected() []int { return nil }

func TestPanickingSelectorFailsRunGracefully(t *testing.T) {
	g := buildFilterMDF(t, panickySelector{}, mdf.SizeEvaluator())
	_, err := engine.Execute(g, engine.Options{
		Cluster:     testCluster(1 << 30),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
	})
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err = %v, want a run error reporting the selector panic", err)
	}
}
