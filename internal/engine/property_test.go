package engine_test

import (
	"fmt"
	"testing"

	"metadataflow/internal/cluster"
	"metadataflow/internal/dataset"
	"metadataflow/internal/engine"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/stats"
)

// randomMDF generates a random well-formed MDF: a pipeline of 1-3 scopes,
// each with 2-5 branches of 1-3 chained filters, nesting one extra scope
// inside a random branch with probability 1/2.
func randomMDF(t *testing.T, rng *stats.RNG) *graph.Graph {
	t.Helper()
	b := mdf.NewBuilder()
	rows := make([]dataset.Row, 512)
	for i := range rows {
		rows[i] = i
	}
	node := b.Source("src", mdf.SourceFunc(func() *dataset.Dataset {
		return dataset.FromRows("in", rows, 4, 1<<18)
	}), 0.001)

	scopes := rng.Intn(3) + 1
	var addScope func(n *mdf.Node, depth int, id string) *mdf.Node
	addScope = func(n *mdf.Node, depth int, id string) *mdf.Node {
		branches := rng.Intn(4) + 2
		specs := make([]mdf.BranchSpec, branches)
		for i := range specs {
			specs[i] = mdf.BranchSpec{Label: fmt.Sprintf("%s-b%d", id, i), Hint: float64(i)}
		}
		nestIn := -1
		if depth < 2 && rng.Float64() < 0.5 {
			nestIn = rng.Intn(branches)
		}
		chainLens := make([]int, branches)
		for i := range chainLens {
			chainLens[i] = rng.Intn(3) + 1
		}
		return n.Explore("explore-"+id, specs,
			mdf.NewChooser(mdf.SizeEvaluator(), mdf.Max()),
			func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
				bi := int(spec.Hint)
				cur := start
				for c := 0; c < chainLens[bi]; c++ {
					keep := 64 + (bi*37+c*11)%400
					cur = cur.Then(fmt.Sprintf("%s-f%d", spec.Label, c),
						mdf.FilterRows("f", func(r dataset.Row) bool {
							return r.(int) < keep
						}), 0.001)
				}
				if bi == nestIn {
					cur = addScope(cur, depth+1, id+"n")
				}
				return cur
			})
	}
	for s := 0; s < scopes; s++ {
		node = addScope(node, 0, fmt.Sprintf("s%d", s))
	}
	node.Then("sink", mdf.Identity("out"), 0.001)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("random MDF invalid: %v", err)
	}
	return g
}

func runWith(t *testing.T, g *graph.Graph, sched scheduler.Policy, incremental bool) *engine.Result {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Workers = 4
	cfg.MemPerWorker = 1 << 30
	res, err := engine.Execute(g, engine.Options{
		Cluster:     cluster.MustNew(cfg),
		Policy:      memorymgr.AMM,
		Scheduler:   sched,
		Incremental: incremental,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res
}

// TestTheorem43OnRandomMDFs checks the practical consequence of Thm. 4.3
// over randomly generated MDFs: the peak number of live datasets under
// branch-aware scheduling never exceeds the peak under breadth-first
// scheduling, and both produce the same result.
func TestTheorem43OnRandomMDFs(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := stats.NewRNG(seed)
		g := randomMDF(t, rng)
		bas := runWith(t, g, scheduler.BAS(nil), false)
		bfs := runWith(t, g, scheduler.BFS(), false)
		if bas.Metrics.PeakLiveDatasets > bfs.Metrics.PeakLiveDatasets {
			t.Errorf("seed %d: BAS peak live %d > BFS peak live %d",
				seed, bas.Metrics.PeakLiveDatasets, bfs.Metrics.PeakLiveDatasets)
		}
		if bas.Output.NumRows() != bfs.Output.NumRows() {
			t.Errorf("seed %d: schedulers disagree on output: %d vs %d rows",
				seed, bas.Output.NumRows(), bfs.Output.NumRows())
		}
	}
}

// TestSchedulerOutputEquivalence: every scheduler/hint/incremental
// combination must produce the same selected result for exhaustive
// selectors (scheduling must not change semantics).
func TestSchedulerOutputEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		rng := stats.NewRNG(seed * 100)
		g := randomMDF(t, rng)
		ref := runWith(t, g, scheduler.BFS(), false)
		for name, sched := range map[string]scheduler.Policy{
			"bas":        scheduler.BAS(nil),
			"bas-sorted": scheduler.BAS(scheduler.SortedHint(false)),
			"bas-random": scheduler.BAS(scheduler.RandomHint(seed)),
		} {
			for _, incr := range []bool{false, true} {
				got := runWith(t, g, sched, incr)
				if got.Output.NumRows() != ref.Output.NumRows() {
					t.Errorf("seed %d %s/incr=%v: output %d rows, BFS got %d",
						seed, name, incr, got.Output.NumRows(), ref.Output.NumRows())
				}
			}
		}
	}
}

// TestDeterminism: identical configurations give identical virtual times.
func TestDeterminism(t *testing.T) {
	rng1 := stats.NewRNG(7)
	g1 := randomMDF(t, rng1)
	a := runWith(t, g1, scheduler.BAS(nil), true)
	rng2 := stats.NewRNG(7)
	g2 := randomMDF(t, rng2)
	b := runWith(t, g2, scheduler.BAS(nil), true)
	if a.CompletionTime() != b.CompletionTime() {
		t.Errorf("completion times differ across identical runs: %v vs %v",
			a.CompletionTime(), b.CompletionTime())
	}
	if a.Metrics.Mem.Hits != b.Metrics.Mem.Hits {
		t.Errorf("hit counts differ: %d vs %d", a.Metrics.Mem.Hits, b.Metrics.Mem.Hits)
	}
}

// TestAllStagesSettled: after a run, every stage is either executed or
// pruned, and pruning only happens below non-exhaustive or property-pruned
// chooses.
func TestAllStagesSettled(t *testing.T) {
	for seed := int64(50); seed <= 60; seed++ {
		rng := stats.NewRNG(seed)
		g := randomMDF(t, rng)
		plan, err := graph.BuildPlan(g)
		if err != nil {
			t.Fatal(err)
		}
		cfg := cluster.DefaultConfig()
		cfg.Workers = 4
		run, err := engine.NewRun(plan, engine.Options{
			Cluster:     cluster.MustNew(cfg),
			Policy:      memorymgr.AMM,
			Scheduler:   scheduler.BAS(nil),
			Incremental: true,
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := run.RunToCompletion(); err != nil {
			t.Fatal(err)
		}
		res := run.Result()
		if res.Metrics.StagesExecuted+res.Metrics.StagesPruned != len(plan.Stages) {
			t.Errorf("seed %d: %d executed + %d pruned != %d stages", seed,
				res.Metrics.StagesExecuted, res.Metrics.StagesPruned, len(plan.Stages))
		}
		// Max is exhaustive: no branches may be pruned here.
		if res.Metrics.BranchesPruned != 0 {
			t.Errorf("seed %d: exhaustive choose pruned %d branches", seed,
				res.Metrics.BranchesPruned)
		}
	}
}

// TestMetricsConservation: across random MDFs, accounting identities hold —
// every access is a hit or a miss, byte counters match their access kinds,
// and discarded datasets never exceed those produced.
func TestMetricsConservation(t *testing.T) {
	for seed := int64(70); seed <= 85; seed++ {
		rng := stats.NewRNG(seed)
		g := randomMDF(t, rng)
		res := runWith(t, g, scheduler.BAS(nil), true)
		m := res.Metrics.Mem
		if m.Misses == 0 && m.BytesFromDisk != 0 {
			t.Errorf("seed %d: disk bytes without misses", seed)
		}
		if m.Hits == 0 && m.BytesFromMem != 0 {
			t.Errorf("seed %d: memory bytes without hits", seed)
		}
		if m.SpilledBytes > 0 && m.Evictions == 0 {
			t.Errorf("seed %d: spilled bytes without evictions", seed)
		}
		if res.Metrics.DatasetsDiscarded < 0 ||
			res.Metrics.PeakLiveDatasets < 1 {
			t.Errorf("seed %d: implausible dataset accounting: %+v", seed, res.Metrics)
		}
		if res.Metrics.ComputeSec <= 0 {
			t.Errorf("seed %d: no compute charged", seed)
		}
		if res.End < res.Start {
			t.Errorf("seed %d: negative span", seed)
		}
	}
}
