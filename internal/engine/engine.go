// Package engine executes dataflow graphs and MDFs on the simulated cluster,
// mirroring the SEEP implementation of §5: a master-side scheduler drives
// stage execution on workers, choose evaluator functions run on workers
// while selection functions run at the master, the dataflow is rewritten
// dynamically when choose decisions prune branches, and worker memory
// allocators spill datasets under the configured eviction policy.
//
// Completion times are virtual seconds from the cluster's discrete-event
// cost model; operator functions execute for real so that choose decisions
// are based on genuine result quality.
package engine

import (
	"fmt"

	"metadataflow/internal/cluster"
	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
)

// Options configures a run.
type Options struct {
	// Cluster is the simulated cluster; required.
	Cluster *cluster.Cluster
	// MemPerWorker is the job's dataset-memory budget per worker in bytes;
	// 0 uses the cluster's configured budget. Parallel-job baselines pass
	// a 1/k share (§6.1).
	MemPerWorker int64
	// Policy selects the eviction policy (LRU or AMM).
	Policy memorymgr.PolicyKind
	// Scheduler selects the stage-scheduling policy (BFS or BAS); nil
	// defaults to BAS with the default hint.
	Scheduler scheduler.Policy
	// Incremental enables incremental choose evaluation (§3.1): branch
	// results are scored as soon as the branch completes, datasets of
	// discarded branches are dropped immediately, and superfluous branches
	// are pruned before executing.
	Incremental bool
	// PinReused pins datasets consumed by more than one stage, modelling
	// Spark's explicit cache() designation of reused intermediates (§6.1).
	PinReused bool
	// Trace records a per-stage execution timeline in the result.
	Trace bool
	// Speculative enables straggler mitigation (§5: "can leverage existing
	// mechanisms"): the compute shares of a stage are rebalanced by node
	// speed, modelling speculative re-execution of a slow worker's tasks on
	// faster ones. I/O stays bound to data placement.
	Speculative bool
	// FailAfterStage, when >= 0, injects a node failure after that many
	// stage executions: the node's resident partitions are lost and must
	// be re-read from checkpoints (§5 fault tolerance). FailNode selects
	// the worker.
	FailAfterStage int
	FailNode       int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Scheduler == nil {
		out.Scheduler = scheduler.BAS(nil)
	}
	if out.MemPerWorker == 0 && out.Cluster != nil {
		out.MemPerWorker = out.Cluster.Config.MemPerWorker
	}
	if o.FailAfterStage == 0 && o.FailNode == 0 {
		out.FailAfterStage = -1
	}
	return out
}

// Metrics aggregates the statistics of one run.
type Metrics struct {
	// Mem holds the memory-manager statistics (hit ratio etc.).
	Mem memorymgr.Metrics
	// ComputeSec is the total virtual compute time charged.
	ComputeSec float64
	// StagesExecuted and StagesPruned count scheduling outcomes.
	StagesExecuted int
	StagesPruned   int
	// BranchesPruned counts branches skipped as superfluous (R1b).
	BranchesPruned int
	// BranchesDiscarded counts branches whose datasets were discarded
	// after evaluation (R1a/R3).
	BranchesDiscarded int
	// DatasetsDiscarded counts datasets dropped once fully consumed (R3).
	DatasetsDiscarded int
	// PeakLiveDatasets is the maximum |D^c_s| over the run (Thm. 4.3).
	PeakLiveDatasets int
	// ChooseEvals counts evaluator invocations.
	ChooseEvals int
}

// EventKind classifies a timeline event.
type EventKind int

const (
	// EventStage is a regular stage execution.
	EventStage EventKind = iota
	// EventChooseEval is a worker-side evaluator invocation for a branch.
	EventChooseEval
	// EventChoose is the master-side selection of a choose stage.
	EventChoose
	// EventPruned marks a stage skipped as superfluous.
	EventPruned
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventStage:
		return "stage"
	case EventChooseEval:
		return "eval"
	case EventChoose:
		return "choose"
	case EventPruned:
		return "pruned"
	}
	return "event"
}

// StageEvent is one entry of the execution timeline (recorded when
// Options.Trace is set).
type StageEvent struct {
	// Kind classifies the event.
	Kind EventKind
	// Stage is the stage's display label.
	Stage string
	// Start and End are the event's virtual time span (equal for pruning
	// decisions).
	Start, End float64
}

// Result is the outcome of a run.
type Result struct {
	// Start and End are the virtual start and completion times; End-Start
	// is the job's completion time.
	Start, End float64
	// Output is the dataset produced by the sink stage.
	Output *dataset.Dataset
	// Metrics holds run statistics.
	Metrics Metrics
	// Timeline is the per-stage execution trace (nil unless Options.Trace).
	Timeline []StageEvent
}

// CompletionTime returns End - Start.
func (r *Result) CompletionTime() float64 { return r.End - r.Start }

// Run is a resumable execution of one job; Step executes one stage at a
// time so that concurrent jobs can be interleaved by virtual time.
type Run struct {
	plan *graph.Plan
	opts Options

	allocs []*memorymgr.Allocator

	start    float64
	now      float64
	last     *graph.Stage
	ready    map[int]*graph.Stage
	executed map[int]bool
	skipped  map[int]bool
	stageEnd map[int]float64
	stageOut map[int]*dataset.Dataset

	// consumersLeft tracks remaining consumer stages per dataset (D^c_s).
	consumersLeft map[dataset.ID]int
	datasets      map[dataset.ID]*dataset.Dataset
	protectedIDs  map[dataset.ID]bool // sink outputs, never discarded
	liveCount     int

	sessions map[int]*chooseState // choose stage ID -> state

	metrics  Metrics
	timeline []StageEvent
	output   *dataset.Dataset
	err      error
	done     bool
}

// trace appends a timeline event when tracing is enabled.
func (r *Run) trace(kind EventKind, label string, start, end float64) {
	if !r.opts.Trace {
		return
	}
	r.timeline = append(r.timeline, StageEvent{Kind: kind, Stage: label, Start: start, End: end})
}

type chooseState struct {
	session  graph.ChooseSession
	offered  map[int]bool // branch index -> scored
	scores   map[int]float64
	released map[int]bool // branch dataset already consumed
	done     bool         // remaining branches superfluous
	evalEnd  float64
}

// NewRun prepares a run of the plan with the given options. start is the
// virtual time at which the job is submitted.
func NewRun(plan *graph.Plan, opts Options, start float64) (*Run, error) {
	o := (&opts).withDefaults()
	if o.Cluster == nil {
		return nil, fmt.Errorf("engine: options need a cluster")
	}
	o.Scheduler.Init(plan)
	r := &Run{
		plan:          plan,
		opts:          o,
		start:         start,
		now:           start,
		ready:         make(map[int]*graph.Stage),
		executed:      make(map[int]bool),
		skipped:       make(map[int]bool),
		stageEnd:      make(map[int]float64),
		stageOut:      make(map[int]*dataset.Dataset),
		consumersLeft: make(map[dataset.ID]int),
		datasets:      make(map[dataset.ID]*dataset.Dataset),
		protectedIDs:  make(map[dataset.ID]bool),
		sessions:      make(map[int]*chooseState),
	}
	for _, n := range o.Cluster.Nodes {
		r.allocs = append(r.allocs, memorymgr.NewAllocator(n, o.Cluster.Config, o.MemPerWorker, o.Policy, r))
	}
	for _, st := range plan.SourceStages() {
		r.ready[st.ID] = st
	}
	return r, nil
}

// FutureAccesses implements memorymgr.AccessCounter for AMM (Alg. 2): the
// number of consumer stages that will still read the dataset.
func (r *Run) FutureAccesses(key dataset.PartKey) int {
	n := r.consumersLeft[key.Dataset]
	if n < 0 {
		return 0
	}
	return n
}

// Now returns the job's current virtual time.
func (r *Run) Now() float64 { return r.now }

// Done reports whether the run has finished (successfully or not).
func (r *Run) Done() bool { return r.done }

// Err returns the first execution error.
func (r *Run) Err() error { return r.err }

// Allocator exposes the allocator of node n (for tests and tooling).
func (r *Run) Allocator(n int) *memorymgr.Allocator { return r.allocs[n] }

// LiveDatasets returns |D^c_s|: datasets still needed to complete execution.
func (r *Run) LiveDatasets() int { return r.liveCount }

// Result finalises and returns the run's result. It is valid once Done.
func (r *Run) Result() *Result {
	res := &Result{Start: r.start, End: r.now, Output: r.output, Metrics: r.metrics, Timeline: r.timeline}
	for _, a := range r.allocs {
		res.Metrics.Mem.Merge(a.Metrics())
	}
	return res
}

// Step executes the next stage. It returns false once the run is complete
// or failed.
func (r *Run) Step() bool {
	if r.done {
		return false
	}
	ready := r.readySlice()
	if len(ready) == 0 {
		r.finish()
		return false
	}
	next := r.opts.Scheduler.Pick(ready, r.last)
	delete(r.ready, next.ID)

	var err error
	if next.IsChoose() {
		err = r.execChoose(next)
	} else {
		err = r.execStage(next)
	}
	if err != nil {
		r.err = err
		r.done = true
		return false
	}
	r.last = next
	r.metrics.StagesExecuted++
	if r.opts.FailAfterStage >= 0 && r.metrics.StagesExecuted == r.opts.FailAfterStage {
		if r.opts.FailNode >= 0 && r.opts.FailNode < len(r.allocs) {
			r.allocs[r.opts.FailNode].FailNode()
		}
	}
	r.refreshReady()
	if len(r.ready) == 0 {
		r.finish()
		return false
	}
	return true
}

// RunToCompletion steps the run until done and returns its result.
func (r *Run) RunToCompletion() (*Result, error) {
	for r.Step() {
	}
	if r.err != nil {
		return nil, r.err
	}
	return r.Result(), nil
}

// Execute builds a plan from g and runs it to completion from time 0.
func Execute(g *graph.Graph, opts Options) (*Result, error) {
	plan, err := graph.BuildPlan(g)
	if err != nil {
		return nil, err
	}
	run, err := NewRun(plan, opts, 0)
	if err != nil {
		return nil, err
	}
	return run.RunToCompletion()
}

func (r *Run) finish() {
	r.done = true
	// The output is the dataset of the sink stage(s); with several sinks,
	// their outputs are concatenated.
	var outs []*dataset.Dataset
	for _, st := range r.plan.Stages {
		if len(r.plan.Post(st)) == 0 && r.executed[st.ID] {
			if d := r.stageOut[st.ID]; d != nil {
				outs = append(outs, d)
			}
		}
	}
	switch len(outs) {
	case 0:
	case 1:
		r.output = outs[0]
	default:
		r.output = dataset.Concat("output", outs...)
	}
}

func (r *Run) readySlice() []*graph.Stage {
	out := make([]*graph.Stage, 0, len(r.ready))
	for _, st := range r.plan.Stages {
		if _, ok := r.ready[st.ID]; ok {
			out = append(out, st)
		}
	}
	return out
}

// refreshReady moves stages whose predecessors are all settled into the
// ready set (Alg. 1, lines 13–15, maintained incrementally).
func (r *Run) refreshReady() {
	for _, st := range r.plan.Stages {
		if r.executed[st.ID] || r.skipped[st.ID] {
			continue
		}
		if _, already := r.ready[st.ID]; already {
			continue
		}
		if !r.predsSettled(st) {
			continue
		}
		if st.IsChoose() && r.allPredsSkipped(st) {
			// A choose whose branches were all pruned cannot execute.
			r.skipStage(st, r.now)
			continue
		}
		r.ready[st.ID] = st
	}
}

func (r *Run) predsSettled(st *graph.Stage) bool {
	for _, pre := range r.plan.Pre(st) {
		if !r.executed[pre.ID] && !r.skipped[pre.ID] {
			return false
		}
	}
	return true
}

func (r *Run) allPredsSkipped(st *graph.Stage) bool {
	for _, pre := range r.plan.Pre(st) {
		if !r.skipped[pre.ID] {
			return false
		}
	}
	return true
}

// readyTime returns the virtual time at which the stage may start.
func (r *Run) readyTime(st *graph.Stage) float64 {
	t := r.start
	for _, pre := range r.plan.Pre(st) {
		if e, ok := r.stageEnd[pre.ID]; ok && e > t {
			t = e
		}
	}
	return t
}

// registerOutput records a produced dataset and its consumer count.
func (r *Run) registerOutput(st *graph.Stage, d *dataset.Dataset) {
	r.stageOut[st.ID] = d
	consumers := 0
	for _, post := range r.plan.Post(st) {
		if !r.skipped[post.ID] {
			consumers++
		}
	}
	if _, known := r.datasets[d.ID]; !known {
		r.datasets[d.ID] = d
		r.liveCount++
	}
	if len(r.plan.Post(st)) == 0 {
		// Sink outputs stay live until the end of the job.
		r.protectedIDs[d.ID] = true
	}
	r.consumersLeft[d.ID] += consumers
	if r.opts.PinReused && r.consumersLeft[d.ID] > 1 {
		for i := range d.Parts {
			r.allocs[i%len(r.allocs)].Pin(d.Key(i))
		}
	}
	if r.liveCount > r.metrics.PeakLiveDatasets {
		r.metrics.PeakLiveDatasets = r.liveCount
	}
}

func (r *Run) protected(id dataset.ID) bool { return r.protectedIDs[id] }

// consumeInput decrements a dataset's remaining consumers, discarding it
// when no consumer remains (R3).
func (r *Run) consumeInput(d *dataset.Dataset) {
	if _, live := r.datasets[d.ID]; !live {
		return
	}
	r.consumersLeft[d.ID]--
	if r.consumersLeft[d.ID] <= 0 && !r.protected(d.ID) {
		r.discardDataset(d)
	}
}

func (r *Run) discardDataset(d *dataset.Dataset) {
	if _, live := r.datasets[d.ID]; !live {
		return
	}
	delete(r.datasets, d.ID)
	delete(r.consumersLeft, d.ID)
	r.liveCount--
	r.metrics.DatasetsDiscarded++
	for i := range d.Parts {
		key := d.Key(i)
		r.allocs[i%len(r.allocs)].Discard(key)
	}
}
