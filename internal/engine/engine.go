// Package engine executes dataflow graphs and MDFs on the simulated cluster,
// mirroring the SEEP implementation of §5: a master-side scheduler drives
// stage execution on workers, choose evaluator functions run on workers
// while selection functions run at the master, the dataflow is rewritten
// dynamically when choose decisions prune branches, and worker memory
// allocators spill datasets under the configured eviction policy.
//
// Completion times are virtual seconds from the cluster's discrete-event
// cost model; operator functions execute for real so that choose decisions
// are based on genuine result quality.
package engine

import (
	"context"
	"fmt"

	"metadataflow/internal/ckptstore"
	"metadataflow/internal/cluster"
	"metadataflow/internal/dataset"
	"metadataflow/internal/faults"
	"metadataflow/internal/graph"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/obs"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/sim"
	"metadataflow/internal/spec"
)

// Options configures a run.
type Options struct {
	// Cluster is the simulated cluster; required.
	Cluster *cluster.Cluster
	// MemPerWorker is the job's dataset-memory budget per worker;
	// 0 uses the cluster's configured budget. Parallel-job baselines pass
	// a 1/k share (§6.1).
	MemPerWorker sim.Bytes
	// Policy selects the eviction policy (LRU or AMM).
	Policy memorymgr.PolicyKind
	// Scheduler selects the stage-scheduling policy (BFS or BAS); nil
	// defaults to BAS with the default hint.
	Scheduler scheduler.Policy
	// Incremental enables incremental choose evaluation (§3.1): branch
	// results are scored as soon as the branch completes, datasets of
	// discarded branches are dropped immediately, and superfluous branches
	// are pruned before executing.
	Incremental bool
	// PinReused pins datasets consumed by more than one stage, modelling
	// Spark's explicit cache() designation of reused intermediates (§6.1).
	PinReused bool
	// Trace records a per-stage execution timeline in the result.
	Trace bool
	// Speculative enables straggler mitigation (§5: "can leverage existing
	// mechanisms"): the compute shares of a stage are rebalanced by node
	// speed, modelling speculative re-execution of a slow worker's tasks on
	// faster ones. I/O stays bound to data placement.
	Speculative bool
	// Faults is the deterministic fault plan injected into the run: node
	// crashes, transient slowdown windows, disk-bandwidth degradation and
	// operator panics. nil means a fault-free run, so "crash node 0 before
	// the first stage" ({node: 0}) is expressible without a sentinel.
	// Setting a plan implies Checkpoint.
	Faults *faults.Plan
	// Probe, when non-nil, receives the run's unified telemetry: per-node
	// task spans, per-node counter samples, and the decision audit log
	// (scheduler picks, choose selections, evictions, fault recovery). The
	// probe is threaded into the memory allocators, the scheduling policy
	// and the cluster's resource timelines; nil disables all of it with no
	// per-event cost.
	Probe obs.Probe
	// Checkpoint enables durable-copy awareness in the memory allocators
	// and, under AMM, anticipatory checkpointing of consumed intermediates:
	// background disk writes that overlap compute and cut the lineage
	// re-derivation cost of later failures. Implied by Faults.
	Checkpoint bool
	// Ckpts, when non-nil, mirrors every durable checkpoint into a
	// content-addressed store on disk (internal/ckptstore) and verifies
	// entries before trusting them during crash recovery: a missing or
	// corrupt entry demotes the durable copy and the partition is
	// re-derived by lineage. The simulation's checkpoint cost model is
	// unchanged; the store adds restart durability on top.
	Ckpts *ckptstore.Store
	// CkptChains maps operator IDs (graph creation order) to their spec
	// chain-prefix hashes, from spec.HashReport().OpChains. Required for
	// Ckpts to key entries; stages without a mapping are not mirrored.
	CkptChains []spec.Hash
	// Context, when non-nil, cancels the run between stages: the next Step
	// after the context is done fails the run with an error wrapping the
	// cancellation cause (context.Cause). Long-lived callers — the service
	// layer's per-job deadlines and drain, mdfrun's SIGINT handling — use it
	// to abandon a run at a deterministic scheduling boundary; the partial
	// result and Snapshot stay readable afterwards.
	Context context.Context
	// FailAfterStage and FailNode are deprecated: use Faults. When Faults
	// is nil and FailAfterStage > 0, they are mapped onto a single-crash
	// plan for node FailNode.
	FailAfterStage int
	FailNode       int
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Scheduler == nil {
		out.Scheduler = scheduler.BAS(nil)
	}
	if out.MemPerWorker == 0 && out.Cluster != nil {
		out.MemPerWorker = out.Cluster.Config.MemPerWorker
	}
	if out.Faults == nil {
		out.Faults = faults.FromLegacy(o.FailAfterStage, o.FailNode)
	}
	if out.Faults != nil {
		out.Checkpoint = true
	}
	return out
}

// Metrics aggregates the statistics of one run.
type Metrics struct {
	// Mem holds the memory-manager statistics (hit ratio etc.).
	Mem memorymgr.Metrics
	// ComputeSec is the total virtual compute time charged.
	ComputeSec sim.VTime
	// StagesExecuted and StagesPruned count scheduling outcomes.
	StagesExecuted int
	StagesPruned   int
	// BranchesPruned counts branches skipped as superfluous (R1b).
	BranchesPruned int
	// BranchesDiscarded counts branches whose datasets were discarded
	// after evaluation (R1a/R3).
	BranchesDiscarded int
	// DatasetsDiscarded counts datasets dropped once fully consumed (R3).
	DatasetsDiscarded int
	// PeakLiveDatasets is the maximum |D^c_s| over the run (Thm. 4.3).
	PeakLiveDatasets int
	// ChooseEvals counts evaluator invocations.
	ChooseEvals int

	// FaultsInjected is the total number of fault events delivered (crashes
	// fired, degradation windows activated, panics injected).
	FaultsInjected int
	// NodeCrashes counts injected node failures; PanicsInjected the
	// injected operator panics.
	NodeCrashes    int
	PanicsInjected int
	// Retries counts operator invocations re-attempted after a panic.
	Retries int
	// StagesReExecuted counts lineage re-executions of producing stages;
	// PartitionsRederived the partitions they restored.
	StagesReExecuted    int
	PartitionsRederived int
	// PartitionsRebalanced counts checkpointed partitions moved from a
	// permanently dead node onto survivors.
	PartitionsRebalanced int
	// BranchesQuarantined counts branches discarded because an operator
	// kept panicking past the retry budget.
	BranchesQuarantined int
	// RecoverySec is the virtual time spent in failure recovery.
	RecoverySec sim.VTime
	// RederivedBytes is the data volume restored by lineage re-derivation.
	RederivedBytes sim.Bytes
}

// EventKind classifies a timeline event.
type EventKind int

const (
	// EventStage is a regular stage execution.
	EventStage EventKind = iota
	// EventChooseEval is a worker-side evaluator invocation for a branch.
	EventChooseEval
	// EventChoose is the master-side selection of a choose stage.
	EventChoose
	// EventPruned marks a stage skipped as superfluous.
	EventPruned
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventStage:
		return "stage"
	case EventChooseEval:
		return "eval"
	case EventChoose:
		return "choose"
	case EventPruned:
		return "pruned"
	}
	return fmt.Sprintf("event%d", int(k))
}

// StageEvent is one entry of the execution timeline (recorded when
// Options.Trace is set).
type StageEvent struct {
	// Kind classifies the event.
	Kind EventKind
	// Stage is the stage's display label.
	Stage string
	// Start and End are the event's virtual time span (equal for pruning
	// decisions).
	Start, End sim.VTime
}

// Result is the outcome of a run.
type Result struct {
	// Start and End are the virtual start and completion times; End-Start
	// is the job's completion time.
	Start, End sim.VTime
	// Output is the dataset produced by the sink stage.
	Output *dataset.Dataset
	// Metrics holds run statistics.
	Metrics Metrics
	// Timeline is the per-stage execution trace (nil unless Options.Trace).
	Timeline []StageEvent
	// Quarantined records the branches discarded because of persistently
	// failing operators, with the reason.
	Quarantined []QuarantineRecord
}

// CompletionTime returns End - Start.
func (r *Result) CompletionTime() sim.VTime { return r.End - r.Start }

// Run is a resumable execution of one job; Step executes one stage at a
// time so that concurrent jobs can be interleaved by virtual time.
type Run struct {
	plan *graph.Plan
	opts Options

	allocs []*memorymgr.Allocator

	start    sim.VTime
	now      sim.VTime
	last     *graph.Stage
	ready    map[int]*graph.Stage
	executed map[int]bool
	skipped  map[int]bool
	stageEnd map[int]sim.VTime
	stageOut map[int]*dataset.Dataset

	// consumersLeft tracks remaining consumer stages per dataset (D^c_s).
	consumersLeft map[dataset.ID]int
	datasets      map[dataset.ID]*dataset.Dataset
	protectedIDs  map[dataset.ID]bool // sink outputs, never discarded
	liveCount     int

	sessions map[int]*chooseState // choose stage ID -> state

	// Fault-injection and recovery state.
	injector   *faults.Injector   // nil on fault-free runs
	retry      faults.RetryPolicy // panic retry/backoff policy
	checkpoint bool               // durable-copy awareness enabled
	// producerOf maps a dataset to the stage that first produced it, for
	// lineage re-derivation; forwarding stages (explore, choose) keep the
	// original producer.
	producerOf map[dataset.ID]int
	// stageDur records each executed stage's virtual duration, the cost
	// charged when the stage is re-executed to re-derive lost partitions.
	stageDur map[int]sim.VTime
	// placement overrides the default partition-to-node mapping (index mod
	// workers) for partitions rebalanced or re-derived after failures.
	placement map[dataset.PartKey]int

	// probe is the telemetry sink (Options.Probe); nil disables telemetry.
	probe obs.Probe
	// lastRank retains the previous pick's candidate ranking for the
	// sched.rank_churn series; branchIv tracks the open branch-lifetime
	// intervals. Both are only touched when probe is non-nil.
	lastRank []*graph.Stage
	branchIv map[graph.BranchRef]obs.SpanID

	metrics     Metrics
	timeline    []StageEvent
	quarantined []QuarantineRecord
	output      *dataset.Dataset
	err         error
	done        bool
}

// trace appends a timeline event when tracing is enabled.
func (r *Run) trace(kind EventKind, label string, start, end sim.VTime) {
	if !r.opts.Trace {
		return
	}
	r.timeline = append(r.timeline, StageEvent{Kind: kind, Stage: label, Start: start, End: end})
}

// span records one closed telemetry span; the immediate SpanBegin/SpanEnd
// pairing keeps the probe's acquire/release balance trivially intact.
func (r *Run) span(node int, kind obs.Kind, name string, start, end sim.VTime) {
	if r.probe == nil {
		return
	}
	id := r.probe.SpanBegin(node, kind, name, start)
	r.probe.SpanEnd(id, end)
}

// spanNodes records one span per worker whose time cursor advanced past
// start: the per-node attribution of a stage's work.
func (r *Run) spanNodes(kind obs.Kind, name string, start sim.VTime, nodeT []sim.VTime) {
	if r.probe == nil {
		return
	}
	for n, t := range nodeT {
		if t > start {
			r.span(n, kind, name, start, t)
		}
	}
}

// decide appends one entry to the decision audit log.
func (r *Run) decide(d obs.Decision) {
	if r.probe != nil {
		r.probe.Decision(d)
	}
}

// observePick converts a scheduling pick into an audit-log decision with
// the Alg. 1 candidate ranking (hint values, best first).
func (r *Run) observePick(rec scheduler.PickRecord) {
	d := obs.Decision{
		T: r.now, Node: obs.NodeMaster, Component: "scheduler", Kind: "pick",
		Subject: rec.Chosen.String(), Detail: "policy=" + r.opts.Scheduler.Name(),
	}
	if rec.DepthFirst {
		d.Detail += " depth-first"
	}
	for _, st := range rec.Candidates {
		d.Candidates = append(d.Candidates, obs.Candidate{
			Label: st.String(), Score: st.First().Hint, Chosen: st == rec.Chosen,
		})
	}
	r.probe.Decision(d)
	r.observeRank(rec)
}

type chooseState struct {
	session     graph.ChooseSession
	offered     map[int]bool // branch index -> scored
	scores      map[int]float64
	released    map[int]bool // branch dataset already consumed
	quarantined map[int]bool // branch discarded after persistent op panics
	done        bool         // remaining branches superfluous
	evalEnd     sim.VTime
}

// NewRun prepares a run of the plan with the given options. start is the
// virtual time at which the job is submitted.
func NewRun(plan *graph.Plan, opts Options, start sim.VTime) (*Run, error) {
	o := (&opts).withDefaults()
	if o.Cluster == nil {
		return nil, fmt.Errorf("engine: options need a cluster")
	}
	if o.MemPerWorker < 0 {
		return nil, fmt.Errorf("engine: negative per-worker memory budget %d", o.MemPerWorker)
	}
	if err := o.Cluster.Validate(); err != nil {
		return nil, err
	}
	if o.Faults != nil {
		if err := o.Faults.ValidateFor(len(o.Cluster.Nodes)); err != nil {
			return nil, err
		}
	}
	o.Scheduler.Init(plan)
	r := &Run{
		plan:          plan,
		opts:          o,
		start:         start,
		now:           start,
		ready:         make(map[int]*graph.Stage),
		executed:      make(map[int]bool),
		skipped:       make(map[int]bool),
		stageEnd:      make(map[int]sim.VTime),
		stageOut:      make(map[int]*dataset.Dataset),
		consumersLeft: make(map[dataset.ID]int),
		datasets:      make(map[dataset.ID]*dataset.Dataset),
		protectedIDs:  make(map[dataset.ID]bool),
		sessions:      make(map[int]*chooseState),
		producerOf:    make(map[dataset.ID]int),
		stageDur:      make(map[int]sim.VTime),
		placement:     make(map[dataset.PartKey]int),
		branchIv:      make(map[graph.BranchRef]obs.SpanID),
		retry:         faults.DefaultRetry(),
		checkpoint:    o.Checkpoint,
	}
	if o.Faults != nil {
		r.injector = faults.NewInjector(o.Faults)
		r.retry = r.injector.Retry()
	}
	r.probe = o.Probe
	for _, n := range o.Cluster.Nodes {
		a := memorymgr.NewAllocator(n, o.Cluster.Config, o.MemPerWorker, o.Policy, r)
		a.SetCheckpointing(r.checkpoint)
		a.SetProbe(r.probe)
		r.allocs = append(r.allocs, a)
	}
	if r.probe != nil {
		if po, ok := o.Scheduler.(scheduler.PickObservable); ok {
			po.SetPickObserver(r.observePick)
		}
		if co, ok := r.probe.(cluster.Observer); ok {
			// Resource-occupancy spans: CPU/disk/net busy intervals become
			// per-node resource tracks in the trace.
			o.Cluster.SetObserver(co)
		}
	}
	for _, st := range plan.SourceStages() {
		r.ready[st.ID] = st
	}
	return r, nil
}

// FutureAccesses implements memorymgr.AccessCounter for AMM (Alg. 2): the
// number of consumer stages that will still read the dataset.
func (r *Run) FutureAccesses(key dataset.PartKey) int {
	n := r.consumersLeft[key.Dataset]
	if n < 0 {
		return 0
	}
	return n
}

// Now returns the job's current virtual time.
func (r *Run) Now() sim.VTime { return r.now }

// Done reports whether the run has finished (successfully or not).
func (r *Run) Done() bool { return r.done }

// Err returns the first execution error.
func (r *Run) Err() error { return r.err }

// Allocator exposes the allocator of node n (for tests and tooling).
func (r *Run) Allocator(n int) *memorymgr.Allocator { return r.allocs[n] }

// LiveDatasets returns |D^c_s|: datasets still needed to complete execution.
func (r *Run) LiveDatasets() int { return r.liveCount }

// CheckpointLive writes a durable on-disk copy of every live dataset
// partition that does not have one yet and returns the number of partitions
// newly checkpointed. It is the drain hook of the service layer: a run
// abandoned mid-flight (graceful shutdown, deadline) first persists its
// intermediate state so a later resubmission re-reads instead of recomputing.
// The disk writes are charged on the nodes' timelines at the run's current
// virtual time; iteration follows plan order, so the charge sequence is
// deterministic. Valid on finished, failed and canceled runs alike.
func (r *Run) CheckpointLive() int {
	n := 0
	end := r.now
	seen := make(map[dataset.ID]bool)
	for _, st := range r.plan.Stages {
		d := r.stageOut[st.ID]
		if d == nil || seen[d.ID] {
			continue
		}
		seen[d.ID] = true
		if _, live := r.datasets[d.ID]; !live {
			continue
		}
		for i := range d.Parts {
			key := d.Key(i)
			a := r.allocs[r.nodeOf(key, i)]
			if !a.Known(key) || a.Checkpointed(key) {
				continue
			}
			if t := a.Checkpoint(key, r.now); t > end {
				end = t
			}
			r.mirrorCheckpoint(st, d, i)
			n++
		}
	}
	r.now = end
	return n
}

// Result finalises and returns the run's result. It is valid once Done.
func (r *Run) Result() *Result {
	res := &Result{
		Start: r.start, End: r.now, Output: r.output,
		Metrics: r.metrics, Timeline: r.timeline, Quarantined: r.quarantined,
	}
	if r.injector != nil {
		res.Metrics.FaultsInjected = r.injector.Injected()
	}
	for _, a := range r.allocs {
		res.Metrics.Mem.Merge(a.Metrics())
	}
	return res
}

// Step executes the next stage. It returns false once the run is complete
// or failed. Fault injection happens at the scheduling boundaries before
// and after the stage: transient degradation windows are applied to the
// nodes for the current virtual time, and crashes whose triggers have been
// reached fire and are recovered from before the next stage is picked.
func (r *Run) Step() bool {
	if r.done {
		return false
	}
	if ctx := r.opts.Context; ctx != nil {
		if ctx.Err() != nil {
			r.err = fmt.Errorf("engine: run canceled after %d stages: %w",
				r.metrics.StagesExecuted, context.Cause(ctx))
			r.done = true
			return false
		}
	}
	if err := r.applyFaults(); err != nil {
		r.err = err
		r.done = true
		return false
	}
	ready := r.readySlice()
	if len(ready) == 0 {
		r.finish()
		return false
	}
	if r.probe != nil {
		r.probe.Counter(obs.NodeMaster, "sched.queue_depth", r.now, float64(len(ready)))
	}
	next := r.opts.Scheduler.Pick(ready, r.last)
	delete(r.ready, next.ID)

	if err := r.execGuarded(next); err != nil {
		r.err = err
		r.done = true
		return false
	}
	r.last = next
	if r.executed[next.ID] {
		// A stage absorbed into a branch quarantine counts as pruned, not
		// executed.
		r.metrics.StagesExecuted++
	}
	if err := r.applyFaults(); err != nil {
		r.err = err
		r.done = true
		return false
	}
	r.refreshReady()
	if len(r.ready) == 0 {
		r.finish()
		return false
	}
	return true
}

// execGuarded dispatches the stage to its executor under recover(): a panic
// escaping the per-operator retry machinery (a malformed spec reaching user
// selector code, a chooser session misbehaving mid-run) fails the run with
// an error instead of killing the process, so a bad generated input degrades
// gracefully in a chaos sweep. Construction-time panics (graph builders, mdf
// selector constructors with k < 1) are unaffected — they fire before a Run
// exists and guard true internal invariants.
func (r *Run) execGuarded(next *graph.Stage) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("engine: stage %s: unrecovered panic: %v", next, v)
		}
	}()
	if next.IsChoose() {
		return r.execChoose(next)
	}
	return r.execStage(next)
}

// applyFaults delivers the plan's due fault events at a scheduling boundary:
// it refreshes each node's transient degradation factors for the current
// virtual time and fires (then recovers from) any due crashes.
func (r *Run) applyFaults() error {
	if r.injector == nil {
		return nil
	}
	for i, n := range r.opts.Cluster.Nodes {
		slow, disk := r.injector.TransientFactors(i, r.now.Seconds())
		n.SetFaultFactors(slow, disk)
	}
	for _, c := range r.injector.DueCrashes(r.metrics.StagesExecuted, r.now.Seconds()) {
		if err := r.onCrash(c); err != nil {
			return err
		}
	}
	return nil
}

// RunToCompletion steps the run until done and returns its result.
func (r *Run) RunToCompletion() (*Result, error) {
	for r.Step() {
	}
	if r.err != nil {
		return nil, r.err
	}
	return r.Result(), nil
}

// Execute builds a plan from g and runs it to completion from time 0.
func Execute(g *graph.Graph, opts Options) (*Result, error) {
	plan, err := graph.BuildPlan(g)
	if err != nil {
		return nil, err
	}
	run, err := NewRun(plan, opts, 0)
	if err != nil {
		return nil, err
	}
	return run.RunToCompletion()
}

func (r *Run) finish() {
	r.done = true
	// The output is the dataset of the sink stage(s); with several sinks,
	// their outputs are concatenated.
	var outs []*dataset.Dataset
	for _, st := range r.plan.Stages {
		if len(r.plan.Post(st)) == 0 && r.executed[st.ID] {
			if d := r.stageOut[st.ID]; d != nil {
				outs = append(outs, d)
			}
		}
	}
	switch len(outs) {
	case 0:
	case 1:
		r.output = outs[0]
	default:
		r.output = dataset.Concat("output", outs...)
	}
}

func (r *Run) readySlice() []*graph.Stage {
	out := make([]*graph.Stage, 0, len(r.ready))
	for _, st := range r.plan.Stages {
		if _, ok := r.ready[st.ID]; ok {
			out = append(out, st)
		}
	}
	return out
}

// refreshReady moves stages whose predecessors are all settled into the
// ready set (Alg. 1, lines 13–15, maintained incrementally).
func (r *Run) refreshReady() {
	for _, st := range r.plan.Stages {
		if r.executed[st.ID] || r.skipped[st.ID] {
			continue
		}
		if _, already := r.ready[st.ID]; already {
			continue
		}
		if !r.predsSettled(st) {
			continue
		}
		if st.IsChoose() && r.allPredsSkipped(st) && !r.hasQuarantined(st) {
			// A choose whose branches were all pruned cannot execute. With
			// quarantined branches it still runs (degrading to an empty
			// selection) so downstream trunk stages keep their input.
			r.skipStage(st, r.now)
			continue
		}
		r.ready[st.ID] = st
	}
}

func (r *Run) predsSettled(st *graph.Stage) bool {
	for _, pre := range r.plan.Pre(st) {
		if !r.executed[pre.ID] && !r.skipped[pre.ID] {
			return false
		}
	}
	return true
}

func (r *Run) allPredsSkipped(st *graph.Stage) bool {
	for _, pre := range r.plan.Pre(st) {
		if !r.skipped[pre.ID] {
			return false
		}
	}
	return true
}

// hasQuarantined reports whether any branch of the choose stage was
// quarantined rather than pruned.
func (r *Run) hasQuarantined(st *graph.Stage) bool {
	cs, ok := r.sessions[st.ID]
	return ok && len(cs.quarantined) > 0
}

// readyTime returns the virtual time at which the stage may start.
func (r *Run) readyTime(st *graph.Stage) sim.VTime {
	t := r.start
	for _, pre := range r.plan.Pre(st) {
		if e, ok := r.stageEnd[pre.ID]; ok && e > t {
			t = e
		}
	}
	return t
}

// registerOutput records a produced dataset and its consumer count.
func (r *Run) registerOutput(st *graph.Stage, d *dataset.Dataset) {
	if r.probe != nil {
		// Registration order is the deterministic production order, which
		// gives the dataset its run-stable telemetry alias (raw IDs are
		// process-global and differ between runs).
		r.probe.RegisterDataset(int64(d.ID), d.Name)
	}
	r.stageOut[st.ID] = d
	consumers := 0
	for _, post := range r.plan.Post(st) {
		if !r.skipped[post.ID] {
			consumers++
		}
	}
	if _, known := r.datasets[d.ID]; !known {
		r.datasets[d.ID] = d
		r.liveCount++
		r.producerOf[d.ID] = st.ID
	}
	if len(r.plan.Post(st)) == 0 {
		// Sink outputs stay live until the end of the job.
		r.protectedIDs[d.ID] = true
	}
	r.consumersLeft[d.ID] += consumers
	if r.opts.PinReused && r.consumersLeft[d.ID] > 1 {
		for i := range d.Parts {
			r.allocs[r.nodeOf(d.Key(i), i)].Pin(d.Key(i))
		}
	}
	if r.checkpoint && r.opts.Policy == memorymgr.AMM && (consumers > 0 || r.protected(d.ID)) {
		// Anticipatory checkpointing (AMM under the fault model): every
		// intermediate that will be consumed — and every sink output — gets
		// a durable on-disk copy, written in the background on its node's
		// disk timeline, so a later crash re-reads it instead of re-deriving
		// it by lineage.
		for i := range d.Parts {
			key := d.Key(i)
			r.allocs[r.nodeOf(key, i)].Checkpoint(key, r.now)
			r.mirrorCheckpoint(st, d, i)
		}
	}
	if r.liveCount > r.metrics.PeakLiveDatasets {
		r.metrics.PeakLiveDatasets = r.liveCount
	}
}

func (r *Run) protected(id dataset.ID) bool { return r.protectedIDs[id] }

// consumeInput decrements a dataset's remaining consumers, discarding it
// when no consumer remains (R3).
func (r *Run) consumeInput(d *dataset.Dataset) {
	if _, live := r.datasets[d.ID]; !live {
		return
	}
	r.consumersLeft[d.ID]--
	if r.consumersLeft[d.ID] <= 0 && !r.protected(d.ID) {
		r.discardDataset(d)
	}
}

// unpinDataset releases the PinReused pins of a branch dataset that a
// choose decision has rejected. Without this, a pinned dataset that stays
// live for another consumer would sit in the unevictable pool for the rest
// of the job — the pin leak the leakcheck rule guards against: every Pin
// must have a matching Unpin path.
func (r *Run) unpinDataset(d *dataset.Dataset) {
	if !r.opts.PinReused {
		return
	}
	for i := range d.Parts {
		key := d.Key(i)
		r.allocs[r.nodeOf(key, i)].Unpin(key)
	}
}

func (r *Run) discardDataset(d *dataset.Dataset) {
	if _, live := r.datasets[d.ID]; !live {
		return
	}
	delete(r.datasets, d.ID)
	delete(r.consumersLeft, d.ID)
	r.liveCount--
	r.metrics.DatasetsDiscarded++
	for i := range d.Parts {
		key := d.Key(i)
		r.allocs[r.nodeOf(key, i)].Discard(key)
		delete(r.placement, key)
	}
}
