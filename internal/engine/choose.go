package engine

import (
	"fmt"

	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
	"metadataflow/internal/obs"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/sim"
)

// chooseStateFor lazily creates the incremental selection session for a
// choose stage. Scores are retained at the master, which is also the
// checkpoint the fault-tolerance mechanism recovers from (§5).
func (r *Run) chooseStateFor(st *graph.Stage) *chooseState {
	cs, ok := r.sessions[st.ID]
	if ok {
		return cs
	}
	chooser := st.Ops[0].Chooser
	total := len(r.plan.Pre(st))
	session := chooser.NewSession(total)
	if oa, ok := session.(orderAware); ok {
		oa.SetSortedOrder(r.opts.Scheduler.SortedBranches())
	}
	cs = &chooseState{
		session:     session,
		offered:     make(map[int]bool),
		scores:      make(map[int]float64),
		released:    make(map[int]bool),
		quarantined: make(map[int]bool),
	}
	r.sessions[st.ID] = cs
	return cs
}

// branchIndexOf returns the input index of branchFinal among the choose
// stage's predecessors; branch i of the scope is the choose's i-th input
// (Def. 3.3).
func (r *Run) branchIndexOf(chooseSt, branchFinal *graph.Stage) (int, error) {
	for i, pre := range r.plan.Pre(chooseSt) {
		if pre.ID == branchFinal.ID {
			return i, nil
		}
	}
	return 0, fmt.Errorf("engine: stage %s is not a branch of %s", branchFinal, chooseSt)
}

// evalBranchOf scores the branch that just completed with branchFinal, as
// soon as it completes (incremental choose evaluation, §3.1).
func (r *Run) evalBranchOf(chooseSt, branchFinal *graph.Stage) error {
	branch, err := r.branchIndexOf(chooseSt, branchFinal)
	if err != nil {
		return err
	}
	return r.evalBranch(chooseSt, branch, r.stageEnd[branchFinal.ID])
}

// evalBranch runs the evaluator function of the choose on workers for one
// branch result (Alg. 1, line 7), offers the score to the master-side
// selection session (line 8), discards the datasets of rejected branches,
// and prunes superfluous branches when the session completes early.
func (r *Run) evalBranch(chooseSt *graph.Stage, branch int, ready sim.VTime) error {
	cs := r.chooseStateFor(chooseSt)
	if cs.offered[branch] || cs.quarantined[branch] || cs.done {
		return nil
	}
	pre := r.plan.Pre(chooseSt)[branch]
	d := r.stageOut[pre.ID]
	if d == nil {
		return fmt.Errorf("engine: choose %s branch %d has no dataset", chooseSt, branch)
	}
	op := chooseSt.Ops[0]

	// Workers read the branch result and compute the evaluator score.
	nodeT := r.loadInputs([]*dataset.Dataset{d}, ready)
	scan := sim.VTime(op.CostPerMB * sim.Bytes(d.VirtualBytes()).MB())
	r.chargeCompute([]*dataset.Dataset{d}, sim.VTime(op.FixedCost), scan, nodeT)
	end := ready
	for _, t := range nodeT {
		if t > end {
			end = t
		}
	}
	score, penalty, serr := r.runScore(op, d)
	end += penalty // backoff between evaluator retries
	if end > cs.evalEnd {
		cs.evalEnd = end
	}
	if end > r.now {
		r.now = end
	}

	r.trace(EventChooseEval, fmt.Sprintf("%s[b%d]", chooseSt, branch), ready, end)
	r.spanNodes(obs.KindEval, fmt.Sprintf("%s[b%d]", chooseSt, branch), ready, nodeT)
	if serr != nil {
		// The evaluator kept panicking: the branch result cannot be
		// scored, so the branch is quarantined and the choose proceeds
		// over the remaining branches.
		r.quarantine(chooseSt, branch, serr.Error())
		return nil
	}
	r.metrics.ChooseEvals++
	cs.offered[branch] = true
	cs.scores[branch] = score
	r.observeScore(chooseSt, branch, end, score)

	// Feed stateful scheduling hints (§4.2(iii)) with the observed score.
	if sa, ok := r.opts.Scheduler.(scheduler.ScoreAware); ok {
		if scope := r.plan.ScopeOfChoose(chooseSt); scope != nil && len(scope.Branches[branch]) > 0 {
			head := r.plan.Graph.Op(scope.Branches[branch][0])
			sa.ObserveScore(op, head.Hint, score)
		}
	}

	// The selection function executes at the master (negligible cost).
	discards, done := cs.session.Offer(branch, score)
	// A discard counts as incremental (Tab. 1) only while branches remain
	// unscored; the final offer's discards coincide with the choose itself.
	incremental := len(cs.offered) < len(r.plan.Pre(chooseSt))
	for _, db := range discards {
		r.discardBranchDataset(chooseSt, cs, db, incremental)
	}
	if done && !cs.done {
		cs.done = true
		r.pruneRemaining(chooseSt, cs)
	}
	return nil
}

// discardBranchDataset drops the result dataset of a rejected branch (R1a,
// R3: discarding as early as possible).
func (r *Run) discardBranchDataset(chooseSt *graph.Stage, cs *chooseState, branch int, incremental bool) {
	if cs.released[branch] {
		return
	}
	pre := r.plan.Pre(chooseSt)[branch]
	d := r.stageOut[pre.ID]
	if d == nil {
		return
	}
	cs.released[branch] = true
	if incremental {
		r.metrics.BranchesDiscarded++
	}
	r.unpinDataset(d)
	r.consumeInput(d)
}

// pruneRemaining skips every branch of the choose's scope that has not been
// scored: the selection is complete, so those branches are superfluous
// (R1b). The dataflow is rewritten dynamically, as the SEEP master does
// after a choose decision (§5).
func (r *Run) pruneRemaining(chooseSt *graph.Stage, cs *chooseState) {
	scope := r.plan.ScopeOfChoose(chooseSt)
	if scope == nil {
		return
	}
	for b := range r.plan.Pre(chooseSt) {
		if cs.offered[b] {
			continue
		}
		pruned := false
		for _, st := range r.plan.BranchStages(scope, b) {
			if !r.executed[st.ID] && !r.skipped[st.ID] {
				r.skipStage(st, r.now)
				pruned = true
			}
		}
		if pruned {
			r.metrics.BranchesPruned++
		}
	}
	r.refreshReady()
}

// skipStage marks a stage as pruned and releases the inputs it would have
// consumed.
func (r *Run) skipStage(st *graph.Stage, t sim.VTime) {
	if r.skipped[st.ID] || r.executed[st.ID] {
		return
	}
	r.skipped[st.ID] = true
	r.stageEnd[st.ID] = t
	r.metrics.StagesPruned++
	r.trace(EventPruned, st.String(), t, t)
	r.span(obs.NodeMaster, obs.KindPruned, st.String(), t, t)
	r.observeStageDone(st, t, t, false)
	delete(r.ready, st.ID)
	for _, pre := range r.plan.Pre(st) {
		if r.executed[pre.ID] {
			if d := r.stageOut[pre.ID]; d != nil {
				r.consumeInput(d)
			}
		}
	}
}

// execChoose executes a choose stage: it scores any branches not yet
// evaluated incrementally, finalises the selection, and produces the
// choose's output (the concatenation of the selected datasets, Def. 3.3).
func (r *Run) execChoose(st *graph.Stage) error {
	cs := r.chooseStateFor(st)
	ready := r.readyTime(st)
	pres := r.plan.Pre(st)

	if !cs.done {
		for b, pre := range pres {
			if cs.offered[b] || cs.quarantined[b] || r.skipped[pre.ID] {
				continue
			}
			if err := r.evalBranch(st, b, ready); err != nil {
				return err
			}
			if cs.done {
				break
			}
		}
	}

	end := cs.evalEnd
	if ready > end {
		end = ready
	}

	selected := cs.session.Selected()
	switch len(selected) {
	case 0:
		out := dataset.New(st.Ops[0].Name)
		r.finalizeChooseInputs(st, cs, nil)
		r.registerOutput(st, out)
	case 1:
		d := r.stageOut[pres[selected[0]].ID]
		if d == nil {
			return fmt.Errorf("engine: choose %s selected missing branch %d", st, selected[0])
		}
		r.finalizeChooseInputs(st, cs, map[int]bool{selected[0]: true})
		r.registerOutput(st, d)
		r.consumeForward(d)
	default:
		keep := make(map[int]bool, len(selected))
		var parts []*dataset.Dataset
		for _, b := range selected {
			keep[b] = true
			if d := r.stageOut[pres[b].ID]; d != nil {
				parts = append(parts, d)
			}
		}
		// Concatenation materialises a new dataset: read the selected
		// originals (possibly from disk), copy their partitions into fresh
		// storage, then release the originals.
		nodeT := r.loadInputs(parts, end)
		out := dataset.Concat(st.Ops[0].Name, parts...)
		copied := dataset.New(out.Name)
		for _, p := range out.Parts {
			copied.Parts = append(copied.Parts, &dataset.Partition{Rows: p.Rows, VirtualBytes: p.VirtualBytes})
		}
		if r.probe != nil {
			r.probe.RegisterDataset(int64(copied.ID), copied.Name)
		}
		end = r.storeOutput(copied, nodeT)
		r.finalizeChooseInputs(st, cs, nil) // release all originals
		r.registerOutput(st, copied)
	}
	r.markExecuted(st, ready, end)
	r.trace(EventChoose, st.String(), ready, end)
	r.span(obs.NodeMaster, obs.KindChoose, st.String(), ready, end)
	if r.probe != nil {
		// Audit the selection with every scored branch (Alg. 1's candidate
		// scores); quarantined and pruned branches carry no score and are
		// absent.
		sel := make(map[int]bool, len(selected))
		for _, b := range selected {
			sel[b] = true
		}
		d := obs.Decision{
			T: end, Node: obs.NodeMaster, Component: "engine", Kind: "choose",
			Subject: st.String(),
			Detail:  fmt.Sprintf("selected %d of %d branches", len(selected), len(pres)),
		}
		for b := range pres {
			if !cs.offered[b] {
				continue
			}
			d.Candidates = append(d.Candidates, obs.Candidate{
				Label: fmt.Sprintf("%s[b%d]", st, b), Score: cs.scores[b], Chosen: sel[b],
			})
		}
		r.probe.Decision(d)
	}
	return nil
}

// finalizeChooseInputs consumes every offered branch dataset except those in
// keep (which are forwarded as the choose's output).
func (r *Run) finalizeChooseInputs(st *graph.Stage, cs *chooseState, keep map[int]bool) {
	for b, pre := range r.plan.Pre(st) {
		if !cs.offered[b] || keep[b] || cs.released[b] {
			continue
		}
		cs.released[b] = true
		if d := r.stageOut[pre.ID]; d != nil {
			r.unpinDataset(d)
			r.consumeInput(d)
		}
	}
}
