package dnn_test

import (
	"testing"

	"metadataflow/internal/baseline"
	"metadataflow/internal/cluster"
	"metadataflow/internal/engine"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/workload/dnn"
)

func smallParams() dnn.Params {
	p := dnn.Defaults()
	p.Train, p.Val, p.Dims = 200, 80, 16
	p.Hidden = 12
	p.VirtualBytes = 1 << 28
	p.Inits = dnn.Inits()[:4]
	p.LearningRates = []float64{0.001, 0.01}
	p.Momenta = []float64{0.5, 0.9}
	p.Seed = 7
	return p
}

func testCluster() *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Workers = 4
	cfg.MemPerWorker = 1 << 30
	return cluster.MustNew(cfg)
}

func TestTrainingImprovesAccuracy(t *testing.T) {
	examples := dnn.GenerateExamples(400, 16, 10, 0.5, 3)
	m := dnn.NewModel(16, 12, 10, dnn.Init{Kind: dnn.InitGaussian, A: 0.1}, 1)
	before := m.Accuracy(examples[300:])
	for i := 0; i < 5; i++ {
		m.TrainEpoch(examples[:300], 0.01, 0.9)
	}
	after := m.Accuracy(examples[300:])
	if after <= before {
		t.Errorf("training should improve accuracy: before=%f after=%f", before, after)
	}
	if after < 0.5 {
		t.Errorf("after 5 epochs accuracy = %f, want >= 0.5 on separable data", after)
	}
}

func TestLossDecreasesOverEpochs(t *testing.T) {
	examples := dnn.GenerateExamples(300, 16, 10, 0.5, 3)
	m := dnn.NewModel(16, 12, 10, dnn.Init{Kind: dnn.InitGaussian, A: 0.1}, 1)
	first := m.TrainEpoch(examples, 0.01, 0.9)
	var last float64
	for i := 0; i < 4; i++ {
		last = m.TrainEpoch(examples, 0.01, 0.9)
	}
	if last >= first {
		t.Errorf("loss should decrease: first=%f last=%f", first, last)
	}
}

func TestInitStrategiesProduceDifferentModels(t *testing.T) {
	a := dnn.NewModel(8, 4, 3, dnn.Init{Kind: dnn.InitGaussian, A: 0.1}, 1)
	b := dnn.NewModel(8, 4, 3, dnn.Init{Kind: dnn.InitUniform, A: 0.1}, 1)
	same := true
	for i := range a.W1 {
		if a.W1[i] != b.W1[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different init strategies produced identical weights")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := dnn.NewModel(8, 4, 3, dnn.Init{Kind: dnn.InitGaussian, A: 0.1}, 1)
	c := m.Clone()
	c.W1[0] += 100
	if m.W1[0] == c.W1[0] {
		t.Error("clone shares weight storage with original")
	}
}

func TestPathsCount(t *testing.T) {
	p := smallParams()
	if got, want := p.Paths(), 4*2*2; got != want {
		t.Errorf("Paths() = %d, want %d", got, want)
	}
}

func TestExhaustiveMDFRuns(t *testing.T) {
	p := smallParams()
	g, err := dnn.BuildExhaustiveMDF(p)
	if err != nil {
		t.Fatalf("BuildExhaustiveMDF: %v", err)
	}
	res, err := engine.Execute(g, engine.Options{
		Cluster:     testCluster(),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Metrics.ChooseEvals != p.Paths() {
		t.Errorf("choose evals = %d, want %d", res.Metrics.ChooseEvals, p.Paths())
	}
	if res.Output == nil || res.Output.NumRows() != 1 {
		t.Fatalf("want a single selected model, got %v", res.Output)
	}
}

func TestEarlyChooseExploresFewerPaths(t *testing.T) {
	p := smallParams()
	g, err := dnn.BuildEarlyChooseMDF(p)
	if err != nil {
		t.Fatalf("BuildEarlyChooseMDF: %v", err)
	}
	res, err := engine.Execute(g, engine.Options{
		Cluster:     testCluster(),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	wantEvals := len(p.Inits) + len(p.LearningRates)*len(p.Momenta)
	if res.Metrics.ChooseEvals != wantEvals {
		t.Errorf("choose evals = %d, want %d (|W| + |R×M|)", res.Metrics.ChooseEvals, wantEvals)
	}
}

func TestEarlyChooseFasterThanExhaustive(t *testing.T) {
	p := smallParams()
	ex, err := dnn.BuildExhaustiveMDF(p)
	if err != nil {
		t.Fatalf("BuildExhaustiveMDF: %v", err)
	}
	exRes, err := engine.Execute(ex, engine.Options{
		Cluster: testCluster(), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true,
	})
	if err != nil {
		t.Fatalf("Execute exhaustive: %v", err)
	}
	ec, err := dnn.BuildEarlyChooseMDF(p)
	if err != nil {
		t.Fatalf("BuildEarlyChooseMDF: %v", err)
	}
	ecRes, err := engine.Execute(ec, engine.Options{
		Cluster: testCluster(), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true,
	})
	if err != nil {
		t.Fatalf("Execute early-choose: %v", err)
	}
	if ecRes.CompletionTime() >= exRes.CompletionTime() {
		t.Errorf("early-choose (%0.1fs) should beat exhaustive (%0.1fs)",
			ecRes.CompletionTime(), exRes.CompletionTime())
	}
}

func TestExpandExhaustiveFamily(t *testing.T) {
	p := smallParams()
	g, err := dnn.BuildExhaustiveMDF(p)
	if err != nil {
		t.Fatalf("BuildExhaustiveMDF: %v", err)
	}
	jobs, err := baseline.ExpandJobs(g)
	if err != nil {
		t.Fatalf("ExpandJobs: %v", err)
	}
	if len(jobs) != p.Paths() {
		t.Errorf("expanded jobs = %d, want %d", len(jobs), p.Paths())
	}
}

func TestWeightsAndHyperOnlyVariants(t *testing.T) {
	p := smallParams()
	w, err := dnn.BuildWeightsOnlyMDF(p)
	if err != nil {
		t.Fatalf("BuildWeightsOnlyMDF: %v", err)
	}
	h, err := dnn.BuildHyperOnlyMDF(p)
	if err != nil {
		t.Fatalf("BuildHyperOnlyMDF: %v", err)
	}
	for label, g := range map[string]interface{ Validate() error }{
		"weights": w, "hyper": h,
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s MDF invalid: %v", label, err)
		}
	}
}

func smallIterativeParams() dnn.IterativeParams {
	p := dnn.DefaultIterative()
	p.Train, p.Val, p.Dims = 200, 80, 16
	p.Hidden = 12
	p.VirtualBytes = 1 << 28
	p.Seed = 7
	p.Epochs = 4
	return p
}

func TestIterativeMDFTerminatesDivergingRates(t *testing.T) {
	p := smallIterativeParams()
	g, err := dnn.BuildIterativeMDF(p)
	if err != nil {
		t.Fatalf("BuildIterativeMDF: %v", err)
	}
	res, err := engine.Execute(g, engine.Options{
		Cluster:     testCluster(),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Output == nil || res.Output.NumRows() == 0 {
		t.Fatal("no model selected")
	}
	// With learning rates up to 4.0 on tanh/softmax, at least one branch
	// diverges and its remaining epochs are skipped: total compute must be
	// well below branches x epochs x per-epoch cost.
	branches := len(p.Inits) * len(p.LearningRates) * len(p.Momenta)
	fullCost := float64(branches*p.Epochs) * p.TrainCostSec
	if res.Metrics.ComputeSec.Seconds() >= fullCost {
		t.Errorf("compute %0.0fs should be below the no-termination bound %0.0fs",
			res.Metrics.ComputeSec.Seconds(), fullCost)
	}
}

func TestIterativeMDFBeatsNoGuard(t *testing.T) {
	p := smallIterativeParams()
	guarded, err := dnn.BuildIterativeMDF(p)
	if err != nil {
		t.Fatal(err)
	}
	noGuard := p
	noGuard.DivergenceFactor = 1e18 // effectively never terminates
	noGuard.MinImprovement = 0      // disable the stall check too
	unguarded, err := dnn.BuildIterativeMDF(noGuard)
	if err != nil {
		t.Fatal(err)
	}
	gRes, err := engine.Execute(guarded, engine.Options{
		Cluster: testCluster(), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	uRes, err := engine.Execute(unguarded, engine.Options{
		Cluster: testCluster(), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gRes.CompletionTime() >= uRes.CompletionTime() {
		t.Errorf("in-loop termination (%0.0fs) should beat full execution (%0.0fs)",
			gRes.CompletionTime(), uRes.CompletionTime())
	}
}

func TestIterativeParamsValidation(t *testing.T) {
	p := smallIterativeParams()
	p.Epochs = 0
	if _, err := dnn.BuildIterativeMDF(p); err == nil {
		t.Error("zero epochs accepted")
	}
	p = smallIterativeParams()
	p.DivergenceFactor = 1
	if _, err := dnn.BuildIterativeMDF(p); err == nil {
		t.Error("divergence factor 1 accepted")
	}
}
