package dnn

import (
	"fmt"
	"math"

	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
)

// This file implements the iterative variant of the deep learning job
// (§3.2, "Evaluation of iterative computation"): instead of a single
// training epoch per branch, each hyper-parameter branch unrolls several
// epochs, and an in-loop divergence check terminates branches whose loss is
// exploding or failing to improve — avoiding the full execution of
// non-converging configurations.

// IterativeParams extends Params with the unrolled-epoch configuration.
type IterativeParams struct {
	Params
	// Epochs is the unrolled round count per branch.
	Epochs int
	// DivergenceFactor terminates a branch whose loss after a round
	// exceeds its first-round loss by this factor (or is NaN/Inf).
	DivergenceFactor float64
	// MinImprovement terminates a branch whose loss fails to improve by at
	// least this relative amount per round ("the computation is not
	// converging", §3.2). Zero disables the stall check.
	MinImprovement float64
}

// DefaultIterative returns the iterative configuration: a wider learning
// rate grid (including diverging rates) trained for several epochs.
func DefaultIterative() IterativeParams {
	p := Defaults()
	p.LearningRates = []float64{0.0001, 0.001, 0.01, 0.1, 1.0, 4.0}
	p.Momenta = []float64{0.9}
	p.Inits = Inits()[:2]
	return IterativeParams{Params: p, Epochs: 5, DivergenceFactor: 3, MinImprovement: 0.01}
}

// Validate reports configuration errors.
func (p IterativeParams) Validate() error {
	if err := p.Params.Validate(); err != nil {
		return err
	}
	if p.Epochs < 1 {
		return fmt.Errorf("dnn: iterative training needs >= 1 epoch")
	}
	if p.DivergenceFactor <= 1 {
		return fmt.Errorf("dnn: divergence factor must be > 1")
	}
	if p.MinImprovement < 0 || p.MinImprovement >= 1 {
		return fmt.Errorf("dnn: minimum improvement %g out of [0, 1)", p.MinImprovement)
	}
	return nil
}

// trainState carries a model and its loss history through the unrolled
// rounds.
type trainState struct {
	model     *Model
	firstLoss float64
	prevLoss  float64
	lastLoss  float64
}

// stateDataset wraps a training state as a dataset whose accounted size is
// the training data the next epoch must process, spread over the cluster's
// partitions; terminated branches forward an empty marker with zero
// accounted bytes, so their remaining rounds are effectively free.
func stateDataset(p IterativeParams, st trainState) *dataset.Dataset {
	d := dataset.New("state")
	for i := 0; i < p.Partitions; i++ {
		part := &dataset.Partition{}
		if i == 0 {
			part.Rows = []dataset.Row{st}
		}
		d.Parts = append(d.Parts, part)
	}
	d.SetVirtualBytes(p.VirtualBytes)
	return d
}

// epochCostPerMB converts the per-epoch training cost into a per-MB rate
// over the accounted training-set size, so that terminated (empty) states
// cost nothing.
func (p IterativeParams) epochCostPerMB() float64 {
	mb := float64(p.VirtualBytes) / 1e6
	if mb <= 0 {
		return 0
	}
	return p.TrainCostSec / mb
}

// BuildIterativeMDF constructs the iterative deep learning MDF: one branch
// per (init, learning rate, momentum) combination, each unrolling Epochs
// training rounds with an in-loop divergence check, choosing the converged
// model with the highest validation accuracy.
func BuildIterativeMDF(p IterativeParams) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	type combo struct {
		init Init
		lr   float64
		mom  float64
	}
	var specs []mdf.BranchSpec
	var combos []combo
	i := 0
	for _, w := range p.Inits {
		for _, r := range p.LearningRates {
			for _, m := range p.Momenta {
				specs = append(specs, mdf.BranchSpec{
					Label: fmt.Sprintf("%s,r=%g,m=%g", w.Name(), r, m),
					Hint:  float64(i),
				})
				combos = append(combos, combo{w, r, m})
				i++
			}
		}
	}

	examples := trainSetOf(p.Params)
	val := examples[p.Train:]
	eval := mdf.Evaluator{
		Name: "validate",
		Fn: func(d *dataset.Dataset) float64 {
			if mdf.Terminated(d) {
				return math.Inf(-1) // diverged branches rank last
			}
			return statePayload(d).model.Accuracy(val)
		},
		CostPerMB: 0.0005,
	}

	b := mdf.NewBuilder()
	src := b.Source("src", sourceFunc(p.Params), 0.0005)
	pre := src.ThenWide("preprocess", preprocessOp(p.Params), 0.04)
	out := pre.Explore("hyperparams", specs, mdf.NewChooser(eval, mdf.TopK(1)),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			c := combos[int(spec.Hint)]
			seed := p.Seed + int64(spec.Hint)
			// Round 0 initialises the model from the preprocessed data.
			init := start.Then("init("+spec.Label+")",
				mdf.WholeDataset("init", func(in *dataset.Dataset) (*dataset.Dataset, error) {
					examples := payload(in).examples
					m := NewModel(p.Dims, p.Hidden, p.Classes, c.init, seed)
					loss := m.TrainEpoch(examples[:p.Train], c.lr, c.mom)
					return stateDataset(p, trainState{model: m, firstLoss: loss, prevLoss: loss, lastLoss: loss}), nil
				}), p.epochCostPerMB())
			return init.Iterate(mdf.IterationSpec{
				Name:      "epoch(" + spec.Label + ")",
				Rounds:    p.Epochs - 1,
				CostPerMB: p.epochCostPerMB(),
				Step: func(round int, d *dataset.Dataset) (*dataset.Dataset, error) {
					st := statePayload(d)
					loss := st.model.TrainEpoch(examples[:p.Train], c.lr, c.mom)
					return stateDataset(p, trainState{
						model: st.model, firstLoss: st.firstLoss,
						prevLoss: st.lastLoss, lastLoss: loss,
					}), nil
				},
				Diverged: func(round int, d *dataset.Dataset) bool {
					st := statePayload(d)
					if math.IsNaN(st.lastLoss) || math.IsInf(st.lastLoss, 0) ||
						st.lastLoss > st.firstLoss*p.DivergenceFactor {
						return true
					}
					return p.MinImprovement > 0 && st.lastLoss > st.prevLoss*(1-p.MinImprovement)
				},
			})
		})
	out.Then("sink", mdf.Identity("model"), 0.0001)
	return b.Build()
}

// statePayload extracts the training state from a partitioned state dataset.
func statePayload(d *dataset.Dataset) trainState {
	for _, p := range d.Parts {
		if len(p.Rows) > 0 {
			return p.Rows[0].(trainState)
		}
	}
	panic("dnn: state dataset has no payload")
}
