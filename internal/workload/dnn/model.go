// Package dnn implements the deep learning workload of §6 (workload 1,
// Fig. 21): training a multi-layer neural network while exploring weight
// initialisation strategies, learning rates and momentum values, choosing
// the configuration with the highest validation accuracy. The CIFAR-10
// dataset is substituted by a synthetic class-structured image set with the
// same 10-class shape.
package dnn

import (
	"fmt"
	"math"

	"metadataflow/internal/stats"
)

// InitKind selects a weight initialisation strategy.
type InitKind int

const (
	// InitGaussian draws weights from N(mean, std).
	InitGaussian InitKind = iota
	// InitUniform draws weights from U(-bound, bound).
	InitUniform
)

// Init is one weight initialisation strategy (the paper explores eight,
// "based on either Gaussian or uniform distributions").
type Init struct {
	Kind InitKind
	// A is the std for Gaussian, the bound for uniform.
	A float64
	// Mean applies to Gaussian initialisation.
	Mean float64
}

// Name returns the strategy label.
func (w Init) Name() string {
	if w.Kind == InitGaussian {
		return fmt.Sprintf("Gaussian(%g,%g)", w.Mean, w.A)
	}
	return fmt.Sprintf("Uniform(-%g,%g)", w.A, w.A)
}

// Inits returns the paper's eight initialisation strategies.
func Inits() []Init {
	return []Init{
		{Kind: InitGaussian, A: 0.5},
		{Kind: InitGaussian, A: 0.1},
		{Kind: InitGaussian, A: 0.05},
		{Kind: InitGaussian, A: 0.01},
		{Kind: InitUniform, A: 1},
		{Kind: InitUniform, A: 0.1},
		{Kind: InitUniform, A: 0.05},
		{Kind: InitUniform, A: 0.01},
	}
}

// Example is one labelled sample.
type Example struct {
	X []float64
	Y int
}

// Model is a two-layer perceptron: input → hidden (tanh) → classes
// (softmax).
type Model struct {
	In, Hidden, Classes int
	W1                  []float64 // Hidden × In
	B1                  []float64
	W2                  []float64 // Classes × Hidden
	B2                  []float64
	// velocity buffers for momentum
	vW1, vB1, vW2, vB2 []float64
}

// NewModel allocates a model with the given shape and initialises its
// weights with the strategy and seed.
func NewModel(in, hidden, classes int, init Init, seed int64) *Model {
	m := &Model{
		In: in, Hidden: hidden, Classes: classes,
		W1: make([]float64, hidden*in), B1: make([]float64, hidden),
		W2: make([]float64, classes*hidden), B2: make([]float64, classes),
		vW1: make([]float64, hidden*in), vB1: make([]float64, hidden),
		vW2: make([]float64, classes*hidden), vB2: make([]float64, classes),
	}
	rng := stats.NewRNG(seed)
	draw := func() float64 {
		if init.Kind == InitGaussian {
			return rng.Normal(init.Mean, init.A)
		}
		return rng.Uniform(-init.A, init.A)
	}
	for i := range m.W1 {
		m.W1[i] = draw()
	}
	for i := range m.W2 {
		m.W2[i] = draw()
	}
	return m
}

// Clone returns a deep copy of the model (used when continuing training
// from a chosen initialisation in the early-choose MDF).
func (m *Model) Clone() *Model {
	cp := &Model{In: m.In, Hidden: m.Hidden, Classes: m.Classes}
	cp.W1 = append([]float64(nil), m.W1...)
	cp.B1 = append([]float64(nil), m.B1...)
	cp.W2 = append([]float64(nil), m.W2...)
	cp.B2 = append([]float64(nil), m.B2...)
	cp.vW1 = make([]float64, len(m.vW1))
	cp.vB1 = make([]float64, len(m.vB1))
	cp.vW2 = make([]float64, len(m.vW2))
	cp.vB2 = make([]float64, len(m.vB2))
	return cp
}

// forward computes hidden activations and class probabilities.
func (m *Model) forward(x []float64, hidden, probs []float64) {
	for h := 0; h < m.Hidden; h++ {
		sum := m.B1[h]
		row := m.W1[h*m.In : (h+1)*m.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		hidden[h] = math.Tanh(sum)
	}
	maxLogit := math.Inf(-1)
	for c := 0; c < m.Classes; c++ {
		sum := m.B2[c]
		row := m.W2[c*m.Hidden : (c+1)*m.Hidden]
		for h, hv := range hidden {
			sum += row[h] * hv
		}
		probs[c] = sum
		if sum > maxLogit {
			maxLogit = sum
		}
	}
	var z float64
	for c := range probs {
		probs[c] = math.Exp(probs[c] - maxLogit)
		z += probs[c]
	}
	for c := range probs {
		probs[c] /= z
	}
}

// TrainEpoch performs one epoch of SGD with momentum over the examples and
// returns the mean cross-entropy loss (§6: "After an epoch of training, the
// classification accuracy is measured").
func (m *Model) TrainEpoch(examples []Example, lr, momentum float64) float64 {
	hidden := make([]float64, m.Hidden)
	probs := make([]float64, m.Classes)
	dHidden := make([]float64, m.Hidden)
	var loss float64
	for _, ex := range examples {
		m.forward(ex.X, hidden, probs)
		p := probs[ex.Y]
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		// Output-layer gradient (softmax cross-entropy): dL/dlogit_c.
		for h := range dHidden {
			dHidden[h] = 0
		}
		for c := 0; c < m.Classes; c++ {
			g := probs[c]
			if c == ex.Y {
				g -= 1
			}
			row := m.W2[c*m.Hidden : (c+1)*m.Hidden]
			for h, hv := range hidden {
				dHidden[h] += g * row[h]
				idx := c*m.Hidden + h
				m.vW2[idx] = momentum*m.vW2[idx] - lr*g*hv
				row[h] += m.vW2[idx]
			}
			m.vB2[c] = momentum*m.vB2[c] - lr*g
			m.B2[c] += m.vB2[c]
		}
		// Hidden-layer gradient through tanh.
		for h := 0; h < m.Hidden; h++ {
			g := dHidden[h] * (1 - hidden[h]*hidden[h])
			row := m.W1[h*m.In : (h+1)*m.In]
			for i, xi := range ex.X {
				idx := h*m.In + i
				m.vW1[idx] = momentum*m.vW1[idx] - lr*g*xi
				row[i] += m.vW1[idx]
			}
			m.vB1[h] = momentum*m.vB1[h] - lr*g
			m.B1[h] += m.vB1[h]
		}
	}
	return loss / float64(len(examples))
}

// Accuracy returns the classification accuracy over the examples.
func (m *Model) Accuracy(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	hidden := make([]float64, m.Hidden)
	probs := make([]float64, m.Classes)
	correct := 0
	for _, ex := range examples {
		m.forward(ex.X, hidden, probs)
		best := 0
		for c := 1; c < m.Classes; c++ {
			if probs[c] > probs[best] {
				best = c
			}
		}
		if best == ex.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

// GenerateExamples produces a class-structured synthetic image set: each of
// the classes has a Gaussian prototype in feature space; samples are the
// prototype plus noise. This preserves what the experiment needs from
// CIFAR-10: training cost proportional to data size and accuracy that
// genuinely depends on the explored hyper-parameters.
func GenerateExamples(n, dims, classes int, noise float64, seed int64) []Example {
	rng := stats.NewRNG(seed)
	protos := make([][]float64, classes)
	for c := range protos {
		protos[c] = make([]float64, dims)
		for i := range protos[c] {
			protos[c][i] = rng.Normal(0, 1)
		}
	}
	out := make([]Example, n)
	for i := range out {
		c := i % classes
		x := make([]float64, dims)
		for j := range x {
			x[j] = protos[c][j] + rng.Normal(0, noise)
		}
		out[i] = Example{X: x, Y: c}
	}
	return out
}
