package dnn

import (
	"fmt"

	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
)

// Params configures the deep learning MDF.
type Params struct {
	// Train and Val are the training and validation sample counts; Dims
	// the feature dimension (CIFAR-10 has 3072; smaller keeps in-process
	// cost low while the virtual size models the real volume).
	Train, Val, Dims int
	// Hidden is the hidden-layer width; Classes the label count.
	Hidden, Classes int
	// Noise is the within-class noise of the synthetic generator.
	Noise float64
	// VirtualBytes is the accounted size of the training set (CIFAR-10 is
	// ~170 MB; the paper replicates it across workers).
	VirtualBytes int64
	// Partitions is the dataset partition count.
	Partitions int
	// Inits, LearningRates and Momenta are the explorables W, R, M.
	Inits         []Init
	LearningRates []float64
	Momenta       []float64
	// TrainCostSec is the virtual compute cost of one training run over
	// the full accounted dataset, per epoch.
	TrainCostSec float64
	// Seed drives the generators.
	Seed int64
}

// Defaults returns the paper's explorable grid (8 × 4 × 4 = 128 paths) at
// in-process scale.
func Defaults() Params {
	return Params{
		Train: 600, Val: 200, Dims: 48,
		Hidden: 24, Classes: 10,
		Noise:        0.8,
		VirtualBytes: 2 << 30,
		Partitions:   8,
		Inits:        Inits(),
		LearningRates: []float64{
			0.0001, 0.001, 0.005, 0.01,
		},
		Momenta:      []float64{0.25, 0.5, 0.75, 0.9},
		TrainCostSec: 60,
		Seed:         1,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.Train < 10 || p.Val < 10 {
		return fmt.Errorf("dnn: need >= 10 train and val samples")
	}
	if p.Dims < 2 || p.Hidden < 2 || p.Classes < 2 {
		return fmt.Errorf("dnn: degenerate model shape")
	}
	if len(p.Inits) < 2 || len(p.LearningRates) < 1 || len(p.Momenta) < 1 {
		return fmt.Errorf("dnn: need >= 2 inits and >= 1 learning rate and momentum")
	}
	if p.Partitions < 1 {
		return fmt.Errorf("dnn: need >= 1 partition")
	}
	return nil
}

// Paths returns |W × R × M|, the exhaustive exploration size.
func (p Params) Paths() int { return len(p.Inits) * len(p.LearningRates) * len(p.Momenta) }

// modelRow wraps a trained model as the single row of a branch's output
// dataset.
type modelRow struct {
	model *Model
}

// dataRow wraps the preprocessed example set as a single logical row.
type dataRow struct {
	examples []Example
}

// exampleDataset wraps an example set as a dataset partitioned across
// p.Partitions workers: the logical payload rides in partition 0 while the
// accounted bytes spread evenly, modelling a training set partitioned over
// the cluster.
func exampleDataset(name string, p Params, examples []Example, bytes int64) *dataset.Dataset {
	d := dataset.New(name)
	for i := 0; i < p.Partitions; i++ {
		part := &dataset.Partition{}
		if i == 0 {
			part.Rows = []dataset.Row{dataRow{examples: examples}}
		}
		d.Parts = append(d.Parts, part)
	}
	d.SetVirtualBytes(bytes)
	return d
}

// sourceFunc emits the raw example set.
func sourceFunc(p Params) graph.TransformFunc {
	examples := GenerateExamples(p.Train+p.Val, p.Dims, p.Classes, p.Noise, p.Seed)
	return mdf.SourceFunc(func() *dataset.Dataset {
		return exampleDataset("cifar-syn", p, examples, p.VirtualBytes)
	})
}

// preprocessOp scales features into [-1, 1] per dimension — the shared
// pre-processing stage whose reuse drives Fig. 5's MDF advantage.
func preprocessOp(p Params) graph.TransformFunc {
	return mdf.WholeDataset("preprocess", func(in *dataset.Dataset) (*dataset.Dataset, error) {
		raw := payload(in).examples
		lo := make([]float64, p.Dims)
		hi := make([]float64, p.Dims)
		for j := 0; j < p.Dims; j++ {
			lo[j], hi[j] = raw[0].X[j], raw[0].X[j]
		}
		for _, ex := range raw {
			for j, v := range ex.X {
				if v < lo[j] {
					lo[j] = v
				}
				if v > hi[j] {
					hi[j] = v
				}
			}
		}
		scaled := make([]Example, len(raw))
		for i, ex := range raw {
			x := make([]float64, p.Dims)
			for j, v := range ex.X {
				span := hi[j] - lo[j]
				if span == 0 {
					span = 1
				}
				x[j] = 2*(v-lo[j])/span - 1
			}
			scaled[i] = Example{X: x, Y: ex.Y}
		}
		out := exampleDataset("preprocessed", p, scaled, in.VirtualBytes())
		return out, nil
	})
}

// trainOp trains a model from the given initialisation for one epoch.
func trainOp(p Params, init Init, lr, momentum float64, seed int64) graph.TransformFunc {
	name := fmt.Sprintf("train(%s,r=%g,m=%g)", init.Name(), lr, momentum)
	return mdf.WholeDataset(name, func(in *dataset.Dataset) (*dataset.Dataset, error) {
		examples := payload(in).examples
		m := NewModel(p.Dims, p.Hidden, p.Classes, init, seed)
		m.TrainEpoch(examples[:p.Train], lr, momentum)
		out := dataset.FromRows("model", []dataset.Row{modelRow{model: m}}, 1, 0)
		out.SetVirtualBytes(int64(8 * (len(m.W1) + len(m.W2) + len(m.B1) + len(m.B2))))
		return out, nil
	})
}

// continueTrainOp continues training a chosen model with new
// hyper-parameters (the early-choose MDF of Fig. 5: "choose the best result
// as the starting point for the exploration of the hyper-parameters").
func continueTrainOp(p Params, lr, momentum float64) graph.TransformFunc {
	name := fmt.Sprintf("train(r=%g,m=%g)", lr, momentum)
	return mdf.WholeDataset(name, func(in *dataset.Dataset) (*dataset.Dataset, error) {
		base := in.Parts[0].Rows[0].(modelRow).model
		m := base.Clone()
		// The continued round retrains on the cached preprocessed set,
		// which the evaluator closure carries.
		examples := trainSetOf(p)
		m.TrainEpoch(examples[:p.Train], lr, momentum)
		out := dataset.FromRows("model", []dataset.Row{modelRow{model: m}}, 1, 0)
		out.SetVirtualBytes(in.VirtualBytes())
		return out, nil
	})
}

// trainSetKey identifies one generator parameterisation.
type trainSetKey struct {
	seed             int64
	train, val, dims int
	classes          int
	noise            float64
}

// trainSetCache memoises the example set per parameterisation so
// continued-training branches and evaluators reuse it.
var trainSetCache = map[trainSetKey][]Example{}

func trainSetOf(p Params) []Example {
	key := trainSetKey{p.Seed, p.Train, p.Val, p.Dims, p.Classes, p.Noise}
	if ex, ok := trainSetCache[key]; ok {
		return ex
	}
	raw := GenerateExamples(p.Train+p.Val, p.Dims, p.Classes, p.Noise, p.Seed)
	trainSetCache[key] = raw
	return raw
}

// AccuracyEvaluator scores a model branch by validation accuracy
// (Fig. 21's validate()).
func AccuracyEvaluator(p Params) mdf.Evaluator {
	val := trainSetOf(p)[p.Train:]
	return mdf.Evaluator{
		Name: "validate",
		Fn: func(d *dataset.Dataset) float64 {
			if d.NumRows() == 0 {
				return 0
			}
			m := d.Parts[0].Rows[0].(modelRow).model
			return m.Accuracy(val)
		},
		CostPerMB: 0.02,
	}
}

// trainCost returns the fixed virtual cost of one training branch.
func (p Params) trainCost() float64 { return p.TrainCostSec }

// BuildExhaustiveMDF constructs the Fig. 21 MDF: one flat explore over all
// |W × R × M| combinations, choosing the top-1 validation accuracy.
func BuildExhaustiveMDF(p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	type combo struct {
		init Init
		lr   float64
		mom  float64
	}
	var specs []mdf.BranchSpec
	var combos []combo
	i := 0
	for _, w := range p.Inits {
		for _, r := range p.LearningRates {
			for _, m := range p.Momenta {
				specs = append(specs, mdf.BranchSpec{
					Label: fmt.Sprintf("%s,r=%g,m=%g", w.Name(), r, m),
					Hint:  float64(i),
				})
				combos = append(combos, combo{w, r, m})
				i++
			}
		}
	}
	b := mdf.NewBuilder()
	src := b.Source("src", sourceFunc(p), 0.0005)
	pre := src.ThenWide("preprocess", preprocessOp(p), 0.04)
	out := pre.Explore("hyperparams", specs,
		mdf.NewChooser(AccuracyEvaluator(p), mdf.TopK(1)),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			c := combos[int(spec.Hint)]
			n := start.Then("train("+spec.Label+")",
				trainOp(p, c.init, c.lr, c.mom, p.Seed+int64(spec.Hint)), 0)
			n.Op().FixedCost = p.trainCost()
			return n
		})
	out.Then("sink", mdf.Identity("model"), 0.0001)
	return b.Build()
}

// BuildEarlyChooseMDF constructs the early-choose variant of Fig. 5: first
// explore the weight initialisations W with default hyper-parameters and
// choose the best; then explore R × M continuing from the chosen model,
// reducing the explored paths from |W × R × M| to |W| + |R × M|.
func BuildEarlyChooseMDF(p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var wSpecs []mdf.BranchSpec
	for i, w := range p.Inits {
		wSpecs = append(wSpecs, mdf.BranchSpec{Label: w.Name(), Hint: float64(i)})
	}
	type rm struct {
		lr, mom float64
	}
	var rmSpecs []mdf.BranchSpec
	var rms []rm
	i := 0
	for _, r := range p.LearningRates {
		for _, m := range p.Momenta {
			rmSpecs = append(rmSpecs, mdf.BranchSpec{
				Label: fmt.Sprintf("r=%g,m=%g", r, m),
				Hint:  float64(i),
			})
			rms = append(rms, rm{r, m})
			i++
		}
	}
	defaultLR := p.LearningRates[len(p.LearningRates)/2]
	defaultMom := p.Momenta[len(p.Momenta)/2]

	b := mdf.NewBuilder()
	src := b.Source("src", sourceFunc(p), 0.0005)
	pre := src.ThenWide("preprocess", preprocessOp(p), 0.04)
	chosenInit := pre.Explore("weights", wSpecs,
		mdf.NewChooser(AccuracyEvaluator(p), mdf.TopK(1)),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			w := p.Inits[int(spec.Hint)]
			n := start.Then("train("+spec.Label+")",
				trainOp(p, w, defaultLR, defaultMom, p.Seed+int64(spec.Hint)), 0)
			n.Op().FixedCost = p.trainCost()
			return n
		})
	out := chosenInit.Explore("hyperparams", rmSpecs,
		mdf.NewChooser(AccuracyEvaluator(p), mdf.TopK(1)),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			c := rms[int(spec.Hint)]
			n := start.Then("train("+spec.Label+")",
				continueTrainOp(p, c.lr, c.mom), 0)
			n.Op().FixedCost = p.trainCost()
			return n
		})
	out.Then("sink", mdf.Identity("model"), 0.0001)
	return b.Build()
}

// BuildWeightsOnlyMDF constructs the first Fig. 5 configuration: exploring
// only the initial weights W.
func BuildWeightsOnlyMDF(p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var wSpecs []mdf.BranchSpec
	for i, w := range p.Inits {
		wSpecs = append(wSpecs, mdf.BranchSpec{Label: w.Name(), Hint: float64(i)})
	}
	defaultLR := p.LearningRates[len(p.LearningRates)/2]
	defaultMom := p.Momenta[len(p.Momenta)/2]
	b := mdf.NewBuilder()
	src := b.Source("src", sourceFunc(p), 0.0005)
	pre := src.ThenWide("preprocess", preprocessOp(p), 0.04)
	out := pre.Explore("weights", wSpecs,
		mdf.NewChooser(AccuracyEvaluator(p), mdf.TopK(1)),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			w := p.Inits[int(spec.Hint)]
			n := start.Then("train("+spec.Label+")",
				trainOp(p, w, defaultLR, defaultMom, p.Seed+int64(spec.Hint)), 0)
			n.Op().FixedCost = p.trainCost()
			return n
		})
	out.Then("sink", mdf.Identity("model"), 0.0001)
	return b.Build()
}

// BuildHyperOnlyMDF constructs the second Fig. 5 configuration: exploring
// only the hyper-parameters R × M with a fixed initialisation.
func BuildHyperOnlyMDF(p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	type rm struct {
		lr, mom float64
	}
	var specs []mdf.BranchSpec
	var rms []rm
	i := 0
	for _, r := range p.LearningRates {
		for _, m := range p.Momenta {
			specs = append(specs, mdf.BranchSpec{
				Label: fmt.Sprintf("r=%g,m=%g", r, m),
				Hint:  float64(i),
			})
			rms = append(rms, rm{r, m})
			i++
		}
	}
	if len(specs) < 2 {
		return nil, fmt.Errorf("dnn: hyper-only MDF needs >= 2 combinations")
	}
	init := p.Inits[0]
	b := mdf.NewBuilder()
	src := b.Source("src", sourceFunc(p), 0.0005)
	pre := src.ThenWide("preprocess", preprocessOp(p), 0.04)
	out := pre.Explore("hyperparams", specs,
		mdf.NewChooser(AccuracyEvaluator(p), mdf.TopK(1)),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			c := rms[int(spec.Hint)]
			n := start.Then("train("+spec.Label+")",
				trainOp(p, init, c.lr, c.mom, p.Seed), 0)
			n.Op().FixedCost = p.trainCost()
			return n
		})
	out.Then("sink", mdf.Identity("model"), 0.0001)
	return b.Build()
}

// payload extracts the example-set row of a partitioned example dataset.
func payload(d *dataset.Dataset) dataRow {
	for _, p := range d.Parts {
		if len(p.Rows) > 0 {
			return p.Rows[0].(dataRow)
		}
	}
	panic("dnn: dataset has no payload row")
}
