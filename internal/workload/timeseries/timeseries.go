// Package timeseries implements the time series analysis workload of §6
// (workload 2, Fig. 22): masking data points by value ranges within a
// sliding window, marking discrete events that indicate drastic changes, and
// detecting sequences of discrete events. The oil-well sensor dataset of the
// paper is substituted by a synthetic generator reproducing its statistical
// features (baseline drift, periodic component, heteroscedastic noise,
// injected events).
package timeseries

import (
	"fmt"
	"math"

	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
	"metadataflow/internal/stats"
)

// Point is one sensor measurement.
type Point struct {
	T int64
	V float64
}

// Event is a detected discrete event.
type Event struct {
	Start, End int64
	Magnitude  float64
}

// Params configures the time series MDF.
type Params struct {
	// Rows is the number of measurements (the paper uses ~1 M).
	Rows int
	// Partitions is the dataset partition count.
	Partitions int
	// VirtualBytes is the accounted input size.
	VirtualBytes int64
	// WindowLengths (W) and Thresholds (T) are the masking explorables;
	// MarkWindows (L), MagDiffs (M) and Durations (D) the marking and
	// detection explorables. {W, T} form a first exploration scope closed
	// early by the masking-aggressiveness choose (Ex. 3.5 pattern); the
	// cross product of {L, M, D} forms a second scope over the surviving
	// data (§6 Fig. 7 explores their full product as separate jobs).
	WindowLengths []int
	Thresholds    []float64
	MarkWindows   []int
	MagDiffs      []float64
	Durations     []int
	// MaskKeepRatio bounds masking aggressiveness: a branch qualifies when
	// it keeps at least this fraction of the points.
	MaskKeepRatio float64
	// MaskKeepUpper, when < 1, additionally requires the masking to remove
	// something: branches keeping more than this fraction are rejected and
	// the masking choose becomes an interval selection (§3.1).
	MaskKeepUpper float64
	// Seed drives the generator.
	Seed int64
}

// Defaults returns a 64-branch configuration (4 inner × 16 outer).
func Defaults() Params {
	return Params{
		Rows:          20000,
		Partitions:    8,
		VirtualBytes:  4 << 30,
		WindowLengths: []int{2, 5},
		Thresholds:    []float64{1.001, 1.1},
		MarkWindows:   []int{2, 6},
		MagDiffs:      []float64{0.5, 2.0},
		Durations:     []int{50, 200, 500, 1000},
		MaskKeepRatio: 0.3,
		MaskKeepUpper: 0.9,
		Seed:          1,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.Rows < 100 || p.Partitions < 1 {
		return fmt.Errorf("timeseries: need >= 100 rows and >= 1 partition")
	}
	if len(p.WindowLengths)*len(p.Thresholds) < 2 {
		return fmt.Errorf("timeseries: masking explore needs >= 2 branches")
	}
	if len(p.MarkWindows)*len(p.MagDiffs)*len(p.Durations) < 2 {
		return fmt.Errorf("timeseries: marking explore needs >= 2 branches")
	}
	if p.MaskKeepRatio <= 0 || p.MaskKeepRatio > 1 {
		return fmt.Errorf("timeseries: keep ratio %g out of (0, 1]", p.MaskKeepRatio)
	}
	return nil
}

// Branches returns the total branch count of the MDF.
func (p Params) Branches() int {
	return len(p.WindowLengths) * len(p.Thresholds) *
		len(p.MarkWindows) * len(p.MagDiffs) * len(p.Durations)
}

// Generate produces a synthetic well-sensor series: slow drift + periodic
// component + noise whose variance shifts by regime, with injected spikes.
func Generate(p Params) *dataset.Dataset {
	rng := stats.NewRNG(p.Seed)
	rows := make([]dataset.Row, p.Rows)
	level := 100.0
	noise := 0.3
	for i := range rows {
		if rng.Float64() < 0.001 {
			level += rng.Normal(0, 5) // regime change
			noise = 0.1 + rng.Float64()
		}
		v := level +
			0.002*float64(i) + // drift
			2*math.Sin(float64(i)/500) + // periodic
			rng.Normal(0, noise)
		if rng.Float64() < 0.002 {
			v += rng.Normal(0, 12) // spike event
		}
		rows[i] = Point{T: int64(i), V: v}
	}
	d := dataset.FromRows("well-sensor", rows, p.Partitions, 16)
	d.SetVirtualBytes(p.VirtualBytes)
	return d
}

// outParts returns a usable partition count for an operator output: the
// input's, or 1 when the input is empty (e.g. a choose selected nothing).
func outParts(in *dataset.Dataset) int {
	if n := in.NumPartitions(); n > 0 {
		return n
	}
	return 1
}

func points(d *dataset.Dataset) []Point {
	out := make([]Point, 0, d.NumRows())
	for _, part := range d.Parts {
		for _, r := range part.Rows {
			out = append(out, r.(Point))
		}
	}
	return out
}

// maskOp keeps points whose sliding window of length w has a max/min ratio
// above the threshold t: points in "interesting" ranges survive (§6:
// "masking data points in the series based on the value ranges within a
// sliding window").
func maskOp(p Params, w int, t float64) graph.TransformFunc {
	return mdf.WholeDataset(fmt.Sprintf("mask(w=%d,t=%g)", w, t),
		func(in *dataset.Dataset) (*dataset.Dataset, error) {
			pts := points(in)
			var kept []dataset.Row
			for i := range pts {
				lo, hi := pts[i].V, pts[i].V
				for j := i - w + 1; j <= i; j++ {
					if j < 0 {
						continue
					}
					lo = math.Min(lo, pts[j].V)
					hi = math.Max(hi, pts[j].V)
				}
				if lo <= 0 {
					lo = 1e-9
				}
				if hi/lo > t {
					kept = append(kept, pts[i])
				}
			}
			out := dataset.FromRows("masked", kept, outParts(in), 16)
			if in.NumRows() > 0 {
				out.SetVirtualBytes(in.VirtualBytes() * int64(len(kept)) / int64(in.NumRows()))
			}
			return out, nil
		})
}

// markOp marks discrete events: points where the value changes by more than
// magDiff relative to the median of the preceding window of length l.
func markOp(l int, magDiff float64) graph.TransformFunc {
	return mdf.WholeDataset(fmt.Sprintf("mark(l=%d,m=%g)", l, magDiff),
		func(in *dataset.Dataset) (*dataset.Dataset, error) {
			pts := points(in)
			var events []dataset.Row
			for i := range pts {
				if i < l {
					continue
				}
				var sum float64
				for j := i - l; j < i; j++ {
					sum += pts[j].V
				}
				ref := sum / float64(l)
				if diff := math.Abs(pts[i].V - ref); diff > magDiff {
					events = append(events, Event{Start: pts[i].T, End: pts[i].T, Magnitude: pts[i].V - ref})
				}
			}
			out := dataset.FromRows("events", events, outParts(in), 24)
			out.SetVirtualBytes(in.VirtualBytes() / 20)
			return out, nil
		})
}

// detectOp groups marked events into sequences: consecutive events within
// duration d of each other merge into one detected sequence.
func detectOp(d int) graph.TransformFunc {
	return mdf.WholeDataset(fmt.Sprintf("detect(d=%d)", d),
		func(in *dataset.Dataset) (*dataset.Dataset, error) {
			var evs []Event
			for _, part := range in.Parts {
				for _, r := range part.Rows {
					evs = append(evs, r.(Event))
				}
			}
			var seqs []dataset.Row
			var cur *Event
			for _, e := range evs {
				if cur != nil && e.Start-cur.End <= int64(d) {
					cur.End = e.End
					if math.Abs(e.Magnitude) > math.Abs(cur.Magnitude) {
						cur.Magnitude = e.Magnitude
					}
					continue
				}
				if cur != nil {
					seqs = append(seqs, *cur)
				}
				c := e
				cur = &c
			}
			if cur != nil {
				seqs = append(seqs, *cur)
			}
			out := dataset.FromRows("sequences", seqs, outParts(in), 24)
			out.SetVirtualBytes(in.VirtualBytes() / 4)
			return out, nil
		})
}

// detectionEvaluator scores an outer branch by its number of detected
// sequences (more distinct detected sequences = richer analysis).
func detectionEvaluator() mdf.Evaluator {
	return mdf.Evaluator{
		Name:      "sequences",
		Fn:        func(d *dataset.Dataset) float64 { return float64(d.NumRows()) },
		CostPerMB: 0.0003,
	}
}

// maskSelector returns the masking choose's selection function: a threshold
// on the kept-point ratio (Fig. 22), tightened to an interval when
// MaskKeepUpper < 1 so that useless maskings (removing nothing) are also
// rejected.
func (p Params) maskSelector() mdf.Selector {
	if p.MaskKeepUpper > 0 && p.MaskKeepUpper < 1 {
		return mdf.Interval(p.MaskKeepRatio, p.MaskKeepUpper)
	}
	return mdf.Threshold(p.MaskKeepRatio, false)
}

// BuildMDF constructs the time series MDF as two sequential exploration
// scopes (Fig. 22 with the early scope close of Ex. 3.5): first an explore
// over the (W, T) masking settings, closed immediately by the
// masking-aggressiveness choose so that underperforming maskings are
// discarded before any downstream work; then an explore over the (L, M, D)
// marking/detection settings on the surviving data, choosing the setting
// with the most detected sequences. A user running separate jobs must
// instead execute all |W×T| × |L×M×D| combinations (Fig. 7).
func BuildMDF(p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	input := Generate(p)

	var maskSpecs []mdf.BranchSpec
	type wt struct {
		w int
		t float64
	}
	var wts []wt
	for wi, w := range p.WindowLengths {
		for ti, t := range p.Thresholds {
			maskSpecs = append(maskSpecs, mdf.BranchSpec{
				Label: fmt.Sprintf("w=%d,t=%g", w, t),
				Hint:  float64(wi*len(p.Thresholds) + ti),
			})
			wts = append(wts, wt{w, t})
		}
	}
	var outSpecs []mdf.BranchSpec
	type lmd struct {
		l int
		m float64
		d int
	}
	var lmds []lmd
	i := 0
	for _, l := range p.MarkWindows {
		for _, m := range p.MagDiffs {
			for _, d := range p.Durations {
				outSpecs = append(outSpecs, mdf.BranchSpec{
					Label: fmt.Sprintf("l=%d,m=%g,d=%d", l, m, d),
					Hint:  float64(i),
				})
				lmds = append(lmds, lmd{l, m, d})
				i++
			}
		}
	}

	maskEval := mdf.RatioEvaluator(p.Rows)
	maskEval.CostPerMB = 0.0002
	b := mdf.NewBuilder()
	src := b.Source("src", mdf.SourceFromDataset(input), 0.0002)
	// Scope 1: masking exploration, closed early (Ex. 3.5).
	masked := src.Explore("masking", maskSpecs,
		mdf.NewChooser(maskEval, p.maskSelector()),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			cfg := wts[int(spec.Hint)]
			return start.Then("mask("+spec.Label+")",
				maskOp(p, cfg.w, cfg.t), 0.004)
		})
	// Scope 2: marking and detection exploration over the selected data.
	out := masked.Explore("analysis", outSpecs,
		mdf.NewChooser(detectionEvaluator(), mdf.Max()),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			cfg := lmds[int(spec.Hint)]
			marked := start.Then(fmt.Sprintf("mark(%s)", spec.Label),
				markOp(cfg.l, cfg.m), 0.003)
			return marked.Then(fmt.Sprintf("detect(%s)", spec.Label),
				detectOp(cfg.d), 0.002)
		})
	out.Then("sink", mdf.Identity("detected"), 0.0001)
	return b.Build()
}

// MaskSelector exposes the masking choose selector used by Fig. 8's
// variants; callers can substitute top-k, first-k-threshold, etc.
type MaskSelector func(p Params) mdf.Selector

// BuildFlatMDF constructs the single-scope variant matching Fig. 22
// literally: one explore over (W, T) masking settings with a configurable
// selector, followed by fixed marking and detection. Used by the Fig. 8
// choose-function comparison.
func BuildFlatMDF(p Params, sel mdf.Selector, monotoneEval bool) (*graph.Graph, error) {
	// The flat variant has no marking/detection explore, so only the
	// masking-side constraints of Validate apply.
	if p.Rows < 100 || p.Partitions < 1 {
		return nil, fmt.Errorf("timeseries: need >= 100 rows and >= 1 partition")
	}
	if len(p.WindowLengths)*len(p.Thresholds) < 2 {
		return nil, fmt.Errorf("timeseries: masking explore needs >= 2 branches")
	}
	if len(p.MarkWindows) < 1 || len(p.MagDiffs) < 1 || len(p.Durations) < 1 {
		return nil, fmt.Errorf("timeseries: flat MDF needs fixed marking parameters")
	}
	input := Generate(p)
	var maskSpecs []mdf.BranchSpec
	type wt struct {
		w int
		t float64
	}
	var wts []wt
	for _, w := range p.WindowLengths {
		for _, t := range p.Thresholds {
			maskSpecs = append(maskSpecs, mdf.BranchSpec{
				Label: fmt.Sprintf("w=%d,t=%g", w, t),
				// The masking kept-ratio falls monotonically in the
				// threshold; hint-sorting by (t, w) enables sorted-order
				// scheduling (Fig. 8 "first-4, sorted").
				Hint: t*1000 + float64(w),
			})
			wts = append(wts, wt{w, t})
		}
	}
	if len(maskSpecs) < 2 {
		return nil, fmt.Errorf("timeseries: flat MDF needs >= 2 masking branches")
	}
	eval := mdf.RatioEvaluator(p.Rows)
	eval.CostPerMB = 0.0002
	eval.Monotone = monotoneEval
	l, m, d := p.MarkWindows[0], p.MagDiffs[0], p.Durations[0]

	b := mdf.NewBuilder()
	src := b.Source("src", mdf.SourceFromDataset(input), 0.0002)
	masked := src.Explore("masking", maskSpecs, mdf.NewChooser(eval, sel),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			cfg := wts[0]
			for i, s := range maskSpecs {
				if s.Label == spec.Label {
					cfg = wts[i]
					break
				}
			}
			return start.Then("mask("+spec.Label+")", maskOp(p, cfg.w, cfg.t), 0.004)
		})
	marked := masked.Then("mark", markOp(l, m), 0.003)
	detected := marked.Then("detect", detectOp(d), 0.002)
	detected.Then("sink", mdf.Identity("detected"), 0.0001)
	return b.Build()
}

// MaskForTest applies the masking operator directly to a dataset; exposed
// for calibration tests and tooling.
func MaskForTest(p Params, w int, t float64, in *dataset.Dataset) (*dataset.Dataset, error) {
	return maskOp(p, w, t)([]*dataset.Dataset{in})
}
