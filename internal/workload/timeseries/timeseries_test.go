package timeseries_test

import (
	"testing"

	"metadataflow/internal/baseline"
	"metadataflow/internal/cluster"
	"metadataflow/internal/engine"
	"metadataflow/internal/mdf"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/workload/timeseries"
)

func smallParams() timeseries.Params {
	p := timeseries.Defaults()
	p.Rows = 3000
	p.Partitions = 4
	p.VirtualBytes = 1 << 28
	p.WindowLengths = []int{2, 5}
	p.Thresholds = []float64{1.001, 1.05}
	p.MarkWindows = []int{3}
	p.MagDiffs = []float64{1.0}
	p.Durations = []int{50, 200}
	return p
}

func testCluster() *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Workers = 4
	cfg.MemPerWorker = 1 << 30
	return cluster.MustNew(cfg)
}

func TestBranchesCount(t *testing.T) {
	p := smallParams()
	if got, want := p.Branches(), 2*2*1*1*2; got != want {
		t.Errorf("Branches() = %d, want %d", got, want)
	}
}

func TestGenerateShape(t *testing.T) {
	p := smallParams()
	d := timeseries.Generate(p)
	if d.NumRows() != p.Rows {
		t.Fatalf("rows = %d, want %d", d.NumRows(), p.Rows)
	}
	if d.NumPartitions() != p.Partitions {
		t.Fatalf("partitions = %d, want %d", d.NumPartitions(), p.Partitions)
	}
	// Timestamps must be strictly increasing across partitions.
	var last int64 = -1
	for _, r := range d.Rows() {
		pt := r.(timeseries.Point)
		if pt.T <= last {
			t.Fatalf("non-monotonic timestamp %d after %d", pt.T, last)
		}
		last = pt.T
	}
}

func TestNestedMDFRuns(t *testing.T) {
	g, err := timeseries.BuildMDF(smallParams())
	if err != nil {
		t.Fatalf("BuildMDF: %v", err)
	}
	res, err := engine.Execute(g, engine.Options{
		Cluster:     testCluster(),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Output == nil {
		t.Fatal("no output")
	}
	if res.CompletionTime() <= 0 {
		t.Error("non-positive completion time")
	}
}

func TestFlatMDFSelectorVariants(t *testing.T) {
	p := smallParams()
	p.WindowLengths = []int{2, 4, 6, 8}
	p.Thresholds = []float64{1.0001, 1.001, 1.01, 1.1}
	for _, tc := range []struct {
		name string
		sel  mdf.Selector
	}{
		{"all-threshold", mdf.Threshold(0.05, false)},
		{"top-4", mdf.TopK(4)},
		{"first-4", mdf.KThreshold(4, 0.05, false)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, err := timeseries.BuildFlatMDF(p, tc.sel, true)
			if err != nil {
				t.Fatalf("BuildFlatMDF: %v", err)
			}
			res, err := engine.Execute(g, engine.Options{
				Cluster:     testCluster(),
				Policy:      memorymgr.AMM,
				Scheduler:   scheduler.BAS(scheduler.SortedHint(false)),
				Incremental: true,
			})
			if err != nil {
				t.Fatalf("Execute: %v", err)
			}
			if res.Output == nil {
				t.Fatal("no output")
			}
		})
	}
}

func TestFirstKStopsEarly(t *testing.T) {
	p := smallParams()
	p.WindowLengths = []int{2, 4, 6, 8}
	p.Thresholds = []float64{1.0001, 1.001, 1.01, 1.1}
	full, err := timeseries.BuildFlatMDF(p, mdf.TopK(4), false)
	if err != nil {
		t.Fatalf("BuildFlatMDF: %v", err)
	}
	fullRes, err := engine.Execute(full, engine.Options{
		Cluster: testCluster(), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true,
	})
	if err != nil {
		t.Fatalf("Execute full: %v", err)
	}
	firstK, err := timeseries.BuildFlatMDF(p, mdf.KThreshold(4, 0.05, false), false)
	if err != nil {
		t.Fatalf("BuildFlatMDF: %v", err)
	}
	firstKRes, err := engine.Execute(firstK, engine.Options{
		Cluster: testCluster(), Policy: memorymgr.AMM,
		Scheduler: scheduler.BAS(nil), Incremental: true,
	})
	if err != nil {
		t.Fatalf("Execute firstK: %v", err)
	}
	if firstKRes.Metrics.ChooseEvals >= fullRes.Metrics.ChooseEvals {
		t.Errorf("first-4 evals (%d) should be fewer than top-4 evals (%d)",
			firstKRes.Metrics.ChooseEvals, fullRes.Metrics.ChooseEvals)
	}
	if firstKRes.CompletionTime() >= fullRes.CompletionTime() {
		t.Errorf("first-4 (%0.1fs) should beat top-4 (%0.1fs)",
			firstKRes.CompletionTime(), fullRes.CompletionTime())
	}
}

func TestExpansionCount(t *testing.T) {
	p := smallParams()
	g, err := timeseries.BuildMDF(p)
	if err != nil {
		t.Fatalf("BuildMDF: %v", err)
	}
	jobs, err := baseline.ExpandJobs(g)
	if err != nil {
		t.Fatalf("ExpandJobs: %v", err)
	}
	if want := p.Branches(); len(jobs) != want {
		t.Errorf("expanded jobs = %d, want %d", len(jobs), want)
	}
}
