package kde

import (
	"fmt"
	"math"

	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
	"metadataflow/internal/stats"
)

// Params configures the data profiling MDF (§6, workload 3).
type Params struct {
	// Rows is the number of samples generated (the paper uses 100 M
	// normally distributed values; the accounted size is independent).
	Rows int
	// Partitions is the dataset partition count.
	Partitions int
	// VirtualBytes is the accounted input size.
	VirtualBytes int64
	// Bandwidths is the explored bandwidth set B (default {0.1, 0.2, 0.3}).
	Bandwidths []float64
	// KernelNames restricts the explored kernels (default: all).
	KernelNames []string
	// HoldoutFraction is the hold-out sample used by the evaluator
	// (the paper uses 1%).
	HoldoutFraction float64
	// FitSample caps the number of samples the estimator keeps, so that
	// density evaluation stays tractable in-process; the virtual compute
	// cost is still charged for the full accounted size.
	FitSample int
	// Seed drives the generator.
	Seed int64
}

// Defaults returns the paper's configuration at in-process scale.
func Defaults() Params {
	return Params{
		Rows:            20000,
		Partitions:      8,
		VirtualBytes:    8 << 30,
		Bandwidths:      []float64{0.1, 0.2, 0.3},
		HoldoutFraction: 0.01,
		FitSample:       400,
		Seed:            1,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.Rows < 100 || p.Partitions < 1 {
		return fmt.Errorf("kde: need >= 100 rows and >= 1 partition")
	}
	if len(p.Bandwidths) == 0 {
		return fmt.Errorf("kde: no bandwidths to explore")
	}
	for _, h := range p.Bandwidths {
		if h <= 0 {
			return fmt.Errorf("kde: non-positive bandwidth %g", h)
		}
	}
	if p.HoldoutFraction <= 0 || p.HoldoutFraction >= 0.5 {
		return fmt.Errorf("kde: holdout fraction %g out of (0, 0.5)", p.HoldoutFraction)
	}
	if p.FitSample < 10 {
		return fmt.Errorf("kde: fit sample too small")
	}
	return nil
}

func (p Params) kernels() ([]Kernel, error) {
	if len(p.KernelNames) == 0 {
		return Kernels(), nil
	}
	var out []Kernel
	for _, n := range p.KernelNames {
		k, err := KernelByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// Generate produces sensor-style measurements: a two-component Gaussian
// mixture, so that kernel and bandwidth choices genuinely change the
// hold-out likelihood.
func Generate(p Params) *dataset.Dataset {
	rng := stats.NewRNG(p.Seed)
	rows := make([]dataset.Row, p.Rows)
	for i := range rows {
		if rng.Float64() < 0.7 {
			rows[i] = rng.Normal(0, 1)
		} else {
			rows[i] = rng.Normal(3.5, 0.5)
		}
	}
	d := dataset.FromRows("sensor", rows, p.Partitions, 8)
	d.SetVirtualBytes(p.VirtualBytes)
	return d
}

func values(d *dataset.Dataset) []float64 {
	out := make([]float64, 0, d.NumRows())
	for _, part := range d.Parts {
		for _, r := range part.Rows {
			out = append(out, r.(float64))
		}
	}
	return out
}

// normalize rescales values to [0, 1] (min-max normalisation).
func normalize(ins []*dataset.Dataset) (*dataset.Dataset, error) {
	xs := values(ins[0])
	if len(xs) == 0 {
		return nil, fmt.Errorf("kde: empty input")
	}
	lo, hi := stats.MinMax(xs)
	span := hi - lo
	if span == 0 {
		span = 1
	}
	return mdf.MapRows("normalized", 1.0, func(r dataset.Row) dataset.Row {
		return (r.(float64) - lo) / span
	})(ins)
}

// standardize rescales values to zero mean and unit variance.
func standardize(ins []*dataset.Dataset) (*dataset.Dataset, error) {
	xs := values(ins[0])
	if len(xs) == 0 {
		return nil, fmt.Errorf("kde: empty input")
	}
	mean := stats.Mean(xs)
	std := stats.StdDev(xs)
	if std == 0 {
		std = 1
	}
	return mdf.MapRows("standardized", 1.0, func(r dataset.Row) dataset.Row {
		return (r.(float64) - mean) / std
	})(ins)
}

// estimateOp fits the estimator on a subsample and outputs the predicted
// densities at the hold-out points (one row per hold-out point). The output
// is small relative to the input, as a density profile is.
func estimateOp(p Params, k Kernel, h float64) graph.TransformFunc {
	return mdf.WholeDataset(fmt.Sprintf("kde(%s,h=%g)", k.Name, h),
		func(in *dataset.Dataset) (*dataset.Dataset, error) {
			xs := values(in)
			nHold := int(float64(len(xs)) * p.HoldoutFraction)
			if nHold < 1 {
				nHold = 1
			}
			holdout, train := xs[:nHold], xs[nHold:]
			if len(train) > p.FitSample {
				stride := len(train) / p.FitSample
				sampled := make([]float64, 0, p.FitSample)
				for i := 0; i < len(train); i += stride {
					sampled = append(sampled, train[i])
				}
				train = sampled
			}
			est := NewEstimator(k, h, train)
			rows := make([]dataset.Row, len(holdout))
			for i, x := range holdout {
				rows[i] = est.Density(x)
			}
			parts := in.NumPartitions()
			if parts < 1 {
				parts = 1
			}
			out := dataset.FromRows("densities", rows, parts, 8)
			out.SetVirtualBytes(in.VirtualBytes() / 50)
			return out, nil
		})
}

// LogLikelihoodEvaluator scores a branch by the mean log of the predicted
// hold-out densities (§6: "computes the log likelihood of the probability
// density function values of the hold-out samples").
func LogLikelihoodEvaluator() mdf.Evaluator {
	return mdf.Evaluator{
		Name: "holdout-loglik",
		Fn: func(d *dataset.Dataset) float64 {
			const floor = 1e-12
			var ll float64
			n := 0
			for _, part := range d.Parts {
				for _, r := range part.Rows {
					v := r.(float64)
					if v < floor {
						v = floor
					}
					ll += math.Log(v)
					n++
				}
			}
			if n == 0 {
				return math.Inf(-1)
			}
			return ll / float64(n)
		},
		CostPerMB: 0.0008,
	}
}

// BuildMDF constructs the data profiling MDF of §6: an outer explore over
// the pre-processing method N = {normalise, standardise}, a nested explore
// over kernel × bandwidth, and hold-out log-likelihood maximisation.
func BuildMDF(p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	kernels, err := p.kernels()
	if err != nil {
		return nil, err
	}
	input := Generate(p)

	var kbSpecs []mdf.BranchSpec
	type kb struct {
		k Kernel
		h float64
	}
	var kbs []kb
	for ki, k := range kernels {
		for bi, h := range p.Bandwidths {
			kbSpecs = append(kbSpecs, mdf.BranchSpec{
				Label: fmt.Sprintf("%s,h=%g", k.Name, h),
				Hint:  float64(ki*len(p.Bandwidths) + bi),
			})
			kbs = append(kbs, kb{k, h})
		}
	}

	b := mdf.NewBuilder()
	src := b.Source("src", mdf.SourceFromDataset(input), 0.0002)
	preSpecs := []mdf.BranchSpec{
		{Label: "normalize", Hint: 0},
		{Label: "standardize", Hint: 1},
	}
	out := src.Explore("preprocess", preSpecs,
		mdf.NewChooser(LogLikelihoodEvaluator(), mdf.Max()),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			var prep graph.TransformFunc
			if spec.Label == "normalize" {
				prep = normalize
			} else {
				prep = standardize
			}
			pre := start.ThenWide(spec.Label, prep, 0.003)
			return pre.Explore("kde", kbSpecs,
				mdf.NewChooser(LogLikelihoodEvaluator(), mdf.Max()),
				func(inner *mdf.Node, ispec mdf.BranchSpec) *mdf.Node {
					cfg := kbs[int(ispec.Hint)]
					return inner.Then("kde("+ispec.Label+")",
						estimateOp(p, cfg.k, cfg.h), 0.006)
				})
		})
	out.Then("sink", mdf.Identity("profile"), 0.0001)
	return b.Build()
}

// ScopedParams configures the scoped KDE MDF of Fig. 3c.
type ScopedParams struct {
	Params
	// OutlierThresholds is the explored set of standard-deviation
	// multipliers for the outlier filter (Fig. 3a uses {1.5, 2}).
	OutlierThresholds []float64
	// MaxRemovedFraction bounds how much data the outlier filter may
	// remove (Ex. 3.5 uses 20%).
	MaxRemovedFraction float64
}

// DefaultScoped returns the Fig. 3c configuration.
func DefaultScoped() ScopedParams {
	return ScopedParams{
		Params:             Defaults(),
		OutlierThresholds:  []float64{1.5, 2.0},
		MaxRemovedFraction: 0.2,
	}
}

// BuildScopedMDF constructs the Fig. 3c variant: an explore over outlier
// thresholds closed early by a choose that keeps only datasets retaining at
// least 1 - MaxRemovedFraction of the input, followed by an explore over
// kernels and bandwidths choosing the best estimator.
func BuildScopedMDF(p ScopedParams) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.OutlierThresholds) < 2 {
		return nil, fmt.Errorf("kde: scoped MDF needs >= 2 outlier thresholds")
	}
	kernels, err := p.kernels()
	if err != nil {
		return nil, err
	}
	input := Generate(p.Params)
	mean := stats.Mean(values(input))
	std := stats.StdDev(values(input))

	var outlierSpecs []mdf.BranchSpec
	for _, o := range p.OutlierThresholds {
		outlierSpecs = append(outlierSpecs, mdf.BranchSpec{
			Label: fmt.Sprintf("o=%g", o), Hint: o,
		})
	}
	var kbSpecs []mdf.BranchSpec
	type kb struct {
		k Kernel
		h float64
	}
	var kbs []kb
	for ki, k := range kernels {
		for bi, h := range p.Bandwidths {
			kbSpecs = append(kbSpecs, mdf.BranchSpec{
				Label: fmt.Sprintf("%s,h=%g", k.Name, h),
				Hint:  float64(ki*len(p.Bandwidths) + bi),
			})
			kbs = append(kbs, kb{k, h})
		}
	}

	b := mdf.NewBuilder()
	src := b.Source("src", mdf.SourceFromDataset(input), 0.0002)
	// Scope 1: outlier filtering, closed early by a size-ratio choose
	// (Ex. 3.5). The evaluator is monotone over the ordered thresholds.
	ratioEval := mdf.Evaluator{
		Name:     "kept-ratio",
		Monotone: true,
		Fn: func(d *dataset.Dataset) float64 {
			return float64(d.NumRows()) / float64(p.Rows)
		},
		CostPerMB: 0.0002,
	}
	filtered := src.Explore("outliers", outlierSpecs,
		mdf.NewChooser(ratioEval, mdf.KThreshold(1, 1-p.MaxRemovedFraction, false)),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			o := spec.Hint
			return start.Then("outlier<"+spec.Label,
				mdf.FilterRows("inliers", func(r dataset.Row) bool {
					return math.Abs(r.(float64)-mean) <= o*std
				}), 0.002)
		})
	// Scope 2: kernel/bandwidth exploration over the surviving dataset.
	out := filtered.Explore("kde", kbSpecs,
		mdf.NewChooser(LogLikelihoodEvaluator(), mdf.Max()),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			cfg := kbs[int(spec.Hint)]
			return start.Then("kde("+spec.Label+")",
				estimateOp(p.Params, cfg.k, cfg.h), 0.006)
		})
	out.Then("sink", mdf.Identity("profile"), 0.0001)
	return b.Build()
}
