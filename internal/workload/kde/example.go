package kde

import (
	"fmt"
	"math"

	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
	"metadataflow/internal/stats"
)

// This file implements the paper's running example (Ex. 3.4, Figs. 3a/3b):
// an MDF with four branches combining outlier thresholds {1.5, 2} and
// kernel functions {gaussian, top-hat}; the choose computes the mean
// integrated squared error (MISE) of each branch's density profile and
// selects the minimum.

// ExampleParams configures the Ex. 3.4 MDF.
type ExampleParams struct {
	// Rows, Partitions, VirtualBytes and Seed configure the input.
	Rows         int
	Partitions   int
	VirtualBytes int64
	Seed         int64
	// OutlierThresholds and KernelNames define the explored combinations
	// (Fig. 3b: t = seq(1.5, 2), k = seq("gaussian", "top-hat")).
	OutlierThresholds []float64
	KernelNames       []string
	// Bandwidth is the fixed KDE bandwidth (Fig. 3b uses 0.2).
	Bandwidth float64
	// GridPoints is the resolution of the density profile each branch
	// produces and the MISE evaluator integrates over.
	GridPoints int
	// FitSample caps the estimator's sample size.
	FitSample int
}

// DefaultExample returns the Fig. 3 configuration at in-process scale.
func DefaultExample() ExampleParams {
	return ExampleParams{
		Rows:              20000,
		Partitions:        8,
		VirtualBytes:      4 << 30,
		Seed:              1,
		OutlierThresholds: []float64{1.5, 2.0},
		KernelNames:       []string{"gaussian", "top-hat"},
		Bandwidth:         0.2,
		GridPoints:        128,
		FitSample:         300,
	}
}

// Validate reports configuration errors.
func (p ExampleParams) Validate() error {
	if p.Rows < 100 || p.Partitions < 1 {
		return fmt.Errorf("kde: need >= 100 rows and >= 1 partition")
	}
	if len(p.OutlierThresholds)*len(p.KernelNames) < 2 {
		return fmt.Errorf("kde: example needs >= 2 branches")
	}
	if p.Bandwidth <= 0 {
		return fmt.Errorf("kde: non-positive bandwidth")
	}
	if p.GridPoints < 2 {
		return fmt.Errorf("kde: need >= 2 grid points")
	}
	return nil
}

// gridPoint is one (x, density) sample of a branch's profile.
type gridPoint struct {
	X, Density float64
}

// MISEEvaluator scores a density profile by its mean integrated squared
// error against a reference density; lower is better, so it pairs with the
// Min selector (Ex. 3.4).
func MISEEvaluator(ref func(float64) float64) mdf.Evaluator {
	return mdf.Evaluator{
		Name: "mise",
		Fn: func(d *dataset.Dataset) float64 {
			rows := d.Rows()
			if len(rows) < 2 {
				return math.Inf(1)
			}
			var sum float64
			for _, r := range rows {
				gp := r.(gridPoint)
				diff := gp.Density - ref(gp.X)
				sum += diff * diff
			}
			first := rows[0].(gridPoint).X
			last := rows[len(rows)-1].(gridPoint).X
			step := (last - first) / float64(len(rows)-1)
			return sum * step
		},
		CostPerMB: 0.0005,
	}
}

// MixtureDensity returns the true density of the Generate mixture, the
// reference the MISE evaluator integrates against.
func MixtureDensity() func(float64) float64 {
	normal := func(x, mu, sigma float64) float64 {
		d := (x - mu) / sigma
		return math.Exp(-0.5*d*d) / (sigma * math.Sqrt(2*math.Pi))
	}
	return func(x float64) float64 {
		return 0.7*normal(x, 0, 1) + 0.3*normal(x, 3.5, 0.5)
	}
}

// profileOp fits the estimator on the filtered data and emits the density
// profile over a fixed grid.
func profileOp(p ExampleParams, k Kernel) graph.TransformFunc {
	const lo, hi = -4.0, 6.0
	return mdf.WholeDataset(fmt.Sprintf("kde(%s,h=%g)", k.Name, p.Bandwidth),
		func(in *dataset.Dataset) (*dataset.Dataset, error) {
			xs := values(in)
			if len(xs) > p.FitSample {
				stride := len(xs) / p.FitSample
				sampled := make([]float64, 0, p.FitSample)
				for i := 0; i < len(xs); i += stride {
					sampled = append(sampled, xs[i])
				}
				xs = sampled
			}
			est := NewEstimator(k, p.Bandwidth, xs)
			rows := make([]dataset.Row, p.GridPoints)
			step := (hi - lo) / float64(p.GridPoints-1)
			for i := range rows {
				x := lo + float64(i)*step
				rows[i] = gridPoint{X: x, Density: est.Density(x)}
			}
			parts := in.NumPartitions()
			if parts < 1 {
				parts = 1
			}
			out := dataset.FromRows("profile", rows, parts, 16)
			out.SetVirtualBytes(in.VirtualBytes() / 100)
			return out, nil
		})
}

// BuildExampleMDF constructs the Fig. 3a MDF: a flat explore over every
// (outlier threshold, kernel) combination, choosing the branch with the
// lowest MISE.
func BuildExampleMDF(p ExampleParams) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	base := Defaults()
	base.Rows = p.Rows
	base.Partitions = p.Partitions
	base.VirtualBytes = p.VirtualBytes
	base.Seed = p.Seed
	input := Generate(base)
	xs := values(input)
	mean, std := stats.Mean(xs), stats.StdDev(xs)

	type combo struct {
		o float64
		k Kernel
	}
	var specs []mdf.BranchSpec
	var combos []combo
	i := 0
	for _, o := range p.OutlierThresholds {
		for _, name := range p.KernelNames {
			k, err := KernelByName(name)
			if err != nil {
				return nil, err
			}
			specs = append(specs, mdf.BranchSpec{
				Label: fmt.Sprintf("o=%g,%s", o, name),
				Hint:  float64(i),
			})
			combos = append(combos, combo{o, k})
			i++
		}
	}

	chooser := mdf.NewChooser(MISEEvaluator(MixtureDensity()), mdf.Min())
	b := mdf.NewBuilder()
	src := b.Source("src", mdf.SourceFromDataset(input), 0.0002)
	out := src.Explore("config", specs, chooser,
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			c := combos[int(spec.Hint)]
			filtered := start.Then("outlier(o="+spec.Label+")",
				mdf.FilterRows("inliers", func(r dataset.Row) bool {
					return math.Abs(r.(float64)-mean) <= c.o*std
				}), 0.002)
			return filtered.Then("estimate("+spec.Label+")", profileOp(p, c.k), 0.006)
		})
	out.Then("sink", mdf.Identity("results"), 0.0001)
	return b.Build()
}
