// Package kde implements the data profiling workload of §2.2 and §6: kernel
// density estimation over sensor-style measurements, with explorable data
// pre-processing (normalisation vs. standardisation), kernel functions and
// bandwidths, scored by the hold-out log likelihood (§6) or the mean
// integrated squared error (Ex. 3.4).
package kde

import (
	"fmt"
	"math"
	"sort"
)

// Kernel is a symmetric probability kernel K(u) with support on [-1, 1]
// (except the Gaussian, which has unbounded support).
type Kernel struct {
	// Name identifies the kernel (the explorable's label).
	Name string
	// Fn evaluates K(u).
	Fn func(u float64) float64
}

// Kernels returns the kernel set explored by the data profiling job:
// gaussian, top-hat, linear, cosine, epanechnikov, biweight, triweight.
func Kernels() []Kernel {
	return []Kernel{
		{Name: "gaussian", Fn: func(u float64) float64 {
			return math.Exp(-0.5*u*u) / math.Sqrt(2*math.Pi)
		}},
		{Name: "top-hat", Fn: boxed(func(u float64) float64 { return 0.5 })},
		{Name: "linear", Fn: boxed(func(u float64) float64 { return 1 - math.Abs(u) })},
		{Name: "cosine", Fn: boxed(func(u float64) float64 {
			return math.Pi / 4 * math.Cos(math.Pi/2*u)
		})},
		{Name: "epanechnikov", Fn: boxed(func(u float64) float64 { return 0.75 * (1 - u*u) })},
		{Name: "biweight", Fn: boxed(func(u float64) float64 {
			t := 1 - u*u
			return 15.0 / 16.0 * t * t
		})},
		{Name: "triweight", Fn: boxed(func(u float64) float64 {
			t := 1 - u*u
			return 35.0 / 32.0 * t * t * t
		})},
	}
}

// KernelByName returns the named kernel.
func KernelByName(name string) (Kernel, error) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("kde: unknown kernel %q", name)
}

func boxed(f func(float64) float64) func(float64) float64 {
	return func(u float64) float64 {
		if u < -1 || u > 1 {
			return 0
		}
		return f(u)
	}
}

// Estimator is a fitted kernel density estimator
// g(x) = 1/(n·h) Σ K((x - x_i)/h) (§2.2).
type Estimator struct {
	Kernel    Kernel
	Bandwidth float64
	Samples   []float64
}

// NewEstimator fits an estimator on the samples; it panics on non-positive
// bandwidth.
func NewEstimator(k Kernel, bandwidth float64, samples []float64) *Estimator {
	if bandwidth <= 0 {
		panic("kde: bandwidth must be positive")
	}
	return &Estimator{Kernel: k, Bandwidth: bandwidth, Samples: samples}
}

// Density evaluates g(x).
func (e *Estimator) Density(x float64) float64 {
	if len(e.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, xi := range e.Samples {
		sum += e.Kernel.Fn((x - xi) / e.Bandwidth)
	}
	return sum / (float64(len(e.Samples)) * e.Bandwidth)
}

// LogLikelihood returns the mean log density over the hold-out points, the
// score the profiling job maximises (§6). Zero densities are floored to
// avoid -Inf.
func (e *Estimator) LogLikelihood(holdout []float64) float64 {
	if len(holdout) == 0 {
		return 0
	}
	const floor = 1e-12
	var ll float64
	for _, x := range holdout {
		d := e.Density(x)
		if d < floor {
			d = floor
		}
		ll += math.Log(d)
	}
	return ll / float64(len(holdout))
}

// MISE approximates the mean integrated squared error between the estimator
// and a reference density over [lo, hi] with the given number of grid
// points (Ex. 3.4's evaluator; lower is better).
func (e *Estimator) MISE(ref func(float64) float64, lo, hi float64, points int) float64 {
	if points < 2 {
		panic("kde: MISE needs at least two grid points")
	}
	step := (hi - lo) / float64(points-1)
	var sum float64
	for i := 0; i < points; i++ {
		x := lo + float64(i)*step
		d := e.Density(x) - ref(x)
		sum += d * d
	}
	return sum * step
}

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth for the
// samples: 1.06 · min(σ, IQR/1.34) · n^(-1/5). A principled starting point
// for the bandwidth explorable of the profiling job.
func SilvermanBandwidth(samples []float64) float64 {
	n := len(samples)
	if n < 2 {
		return 1
	}
	var mean float64
	for _, x := range samples {
		mean += x
	}
	mean /= float64(n)
	var variance float64
	for _, x := range samples {
		d := x - mean
		variance += d * d
	}
	sigma := math.Sqrt(variance / float64(n))
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	iqr := sorted[(3*n)/4] - sorted[n/4]
	spread := sigma
	if alt := iqr / 1.34; alt > 0 && alt < spread {
		spread = alt
	}
	if spread <= 0 {
		spread = 1
	}
	return 1.06 * spread * math.Pow(float64(n), -0.2)
}
