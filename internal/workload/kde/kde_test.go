package kde_test

import (
	"math"
	"testing"

	"metadataflow/internal/baseline"
	"metadataflow/internal/cluster"
	"metadataflow/internal/engine"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/workload/kde"
)

func smallParams() kde.Params {
	p := kde.Defaults()
	p.Rows = 2000
	p.Partitions = 4
	p.VirtualBytes = 1 << 28
	p.KernelNames = []string{"gaussian", "top-hat", "epanechnikov"}
	p.Bandwidths = []float64{0.1, 0.3}
	p.FitSample = 150
	return p
}

func testCluster() *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Workers = 4
	cfg.MemPerWorker = 1 << 30
	return cluster.MustNew(cfg)
}

func TestKernelsIntegrateToOne(t *testing.T) {
	// Every kernel must integrate to ~1 over its support.
	for _, k := range kde.Kernels() {
		lo, hi := -6.0, 6.0
		n := 20000
		step := (hi - lo) / float64(n)
		var sum float64
		for i := 0; i < n; i++ {
			sum += k.Fn(lo+float64(i)*step) * step
		}
		if math.Abs(sum-1) > 0.01 {
			t.Errorf("kernel %s integrates to %f, want 1", k.Name, sum)
		}
	}
}

func TestKernelByName(t *testing.T) {
	if _, err := kde.KernelByName("gaussian"); err != nil {
		t.Errorf("gaussian lookup failed: %v", err)
	}
	if _, err := kde.KernelByName("nonexistent"); err == nil {
		t.Error("unknown kernel should error")
	}
}

func TestEstimatorDensityPositiveNearData(t *testing.T) {
	k, _ := kde.KernelByName("gaussian")
	est := kde.NewEstimator(k, 0.5, []float64{0, 0.1, -0.1, 0.2})
	if d := est.Density(0); d <= 0 {
		t.Errorf("density at data centre = %f, want > 0", d)
	}
	if d0, d5 := est.Density(0), est.Density(5); d5 >= d0 {
		t.Errorf("density should fall away from data: %f vs %f", d0, d5)
	}
}

func TestLogLikelihoodPrefersMatchingBandwidth(t *testing.T) {
	// A spread sample should prefer a moderate bandwidth over a tiny one.
	k, _ := kde.KernelByName("gaussian")
	samples := make([]float64, 200)
	hold := make([]float64, 50)
	rngVals := func(seed float64, n int, out []float64) {
		v := seed
		for i := 0; i < n; i++ {
			v = math.Mod(v*997+0.1234, 1)
			out[i] = 4 * (v - 0.5)
		}
	}
	rngVals(0.37, 200, samples)
	rngVals(0.81, 50, hold)
	tiny := kde.NewEstimator(k, 0.001, samples).LogLikelihood(hold)
	good := kde.NewEstimator(k, 0.5, samples).LogLikelihood(hold)
	if good <= tiny {
		t.Errorf("bandwidth 0.5 loglik %f should beat 0.001 loglik %f", good, tiny)
	}
}

func TestMISEOfPerfectReferenceIsZeroish(t *testing.T) {
	k, _ := kde.KernelByName("gaussian")
	est := kde.NewEstimator(k, 0.3, []float64{0, 1, -1, 0.5, -0.5})
	mise := est.MISE(est.Density, -3, 3, 100)
	if mise != 0 {
		t.Errorf("MISE against itself = %f, want 0", mise)
	}
}

func TestBuildMDFRuns(t *testing.T) {
	g, err := kde.BuildMDF(smallParams())
	if err != nil {
		t.Fatalf("BuildMDF: %v", err)
	}
	res, err := engine.Execute(g, engine.Options{
		Cluster:     testCluster(),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Output == nil || res.Output.NumRows() == 0 {
		t.Fatal("profiling job produced no output")
	}
	// 2 preprocess branches, each with 6 kde branches: 14 evals (12 inner
	// + 2 outer).
	if res.Metrics.ChooseEvals != 14 {
		t.Errorf("choose evals = %d, want 14", res.Metrics.ChooseEvals)
	}
}

func TestExpandedFamilySize(t *testing.T) {
	p := smallParams()
	g, err := kde.BuildMDF(p)
	if err != nil {
		t.Fatalf("BuildMDF: %v", err)
	}
	jobs, err := baseline.ExpandJobs(g)
	if err != nil {
		t.Fatalf("ExpandJobs: %v", err)
	}
	// N=2 preprocessing × (3 kernels × 2 bandwidths) = 12 concrete jobs.
	if len(jobs) != 12 {
		t.Errorf("expanded jobs = %d, want 12", len(jobs))
	}
}

func TestScopedMDFPrunesAggressiveOutlierBranch(t *testing.T) {
	p := kde.DefaultScoped()
	p.Rows = 2000
	p.Partitions = 4
	p.VirtualBytes = 1 << 28
	p.KernelNames = []string{"gaussian", "top-hat"}
	p.Bandwidths = []float64{0.2}
	p.FitSample = 150
	// Thresholds sorted descending by aggressiveness: o=0.1 removes nearly
	// everything, o=3 nearly nothing. With a monotone evaluator, sorted
	// hints and first-1 selection, later branches can be pruned.
	p.OutlierThresholds = []float64{3.0, 2.0, 0.5, 0.1}
	g, err := kde.BuildScopedMDF(p)
	if err != nil {
		t.Fatalf("BuildScopedMDF: %v", err)
	}
	res, err := engine.Execute(g, engine.Options{
		Cluster:     testCluster(),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(scheduler.SortedHint(true)),
		Incremental: true,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// o=3.0 keeps >80% immediately: first-1 threshold is satisfied, so the
	// remaining outlier branches are superfluous (Tab. 1 non-exhaustive).
	if res.Metrics.BranchesPruned < 3 {
		t.Errorf("branches pruned = %d, want >= 3", res.Metrics.BranchesPruned)
	}
	if res.Output == nil || res.Output.NumRows() == 0 {
		t.Fatal("scoped job produced no output")
	}
}

func TestExampleMDFSelectsLowestMISE(t *testing.T) {
	p := kde.DefaultExample()
	p.Rows = 3000
	p.Partitions = 4
	p.VirtualBytes = 1 << 28
	p.FitSample = 200
	g, err := kde.BuildExampleMDF(p)
	if err != nil {
		t.Fatalf("BuildExampleMDF: %v", err)
	}
	res, err := engine.Execute(g, engine.Options{
		Cluster:     testCluster(),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	// Four branches: 2 thresholds x 2 kernels; min selection keeps one.
	if res.Metrics.ChooseEvals != 4 {
		t.Errorf("choose evals = %d, want 4", res.Metrics.ChooseEvals)
	}
	if res.Output.NumRows() != p.GridPoints {
		t.Errorf("profile rows = %d, want %d", res.Output.NumRows(), p.GridPoints)
	}
	// The selected profile should fit the true mixture reasonably well: its
	// MISE must be below a loose bound (a gaussian kernel on the mixture
	// with h=0.2 stays well under this).
	mise := kde.MISEEvaluator(kde.MixtureDensity()).Score(res.Output)
	if mise > 0.02 {
		t.Errorf("selected MISE = %v, want <= 0.02", mise)
	}
}

func TestMISEEvaluatorOrdersKernels(t *testing.T) {
	// On smooth bimodal data, the gaussian kernel should achieve a lower
	// MISE than the discontinuous top-hat at the same bandwidth.
	p := kde.DefaultExample()
	p.Rows = 3000
	p.Partitions = 4
	p.VirtualBytes = 1 << 28
	p.FitSample = 200
	p.OutlierThresholds = []float64{3.0}
	p.KernelNames = []string{"gaussian", "top-hat"}
	g, err := kde.BuildExampleMDF(p)
	if err != nil {
		t.Fatalf("BuildExampleMDF: %v", err)
	}
	res, err := engine.Execute(g, engine.Options{
		Cluster:   testCluster(),
		Policy:    memorymgr.AMM,
		Scheduler: scheduler.BAS(nil),
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Output.NumRows() != p.GridPoints {
		t.Fatalf("no profile selected")
	}
}

func TestExampleParamsValidation(t *testing.T) {
	p := kde.DefaultExample()
	p.OutlierThresholds = []float64{1.5}
	p.KernelNames = []string{"gaussian"}
	if _, err := kde.BuildExampleMDF(p); err == nil {
		t.Error("single combination should be rejected")
	}
	p = kde.DefaultExample()
	p.Bandwidth = 0
	if _, err := kde.BuildExampleMDF(p); err == nil {
		t.Error("zero bandwidth should be rejected")
	}
}

func TestSilvermanBandwidth(t *testing.T) {
	// Standard normal sample of size n: Silverman gives ~1.06 n^(-1/5).
	rngVals := func(n int) []float64 {
		out := make([]float64, n)
		v := 0.5
		for i := range out {
			// Sum of 12 uniforms - 6 approximates a standard normal.
			var s float64
			for j := 0; j < 12; j++ {
				v = math.Mod(v*9301+0.49297, 1)
				s += v
			}
			out[i] = s - 6
		}
		return out
	}
	xs := rngVals(1000)
	h := kde.SilvermanBandwidth(xs)
	want := 1.06 * math.Pow(1000, -0.2)
	if h < want*0.5 || h > want*1.5 {
		t.Errorf("Silverman bandwidth = %v, want around %v", h, want)
	}
	if kde.SilvermanBandwidth([]float64{1}) != 1 {
		t.Error("degenerate input should return 1")
	}
	if kde.SilvermanBandwidth([]float64{2, 2, 2, 2}) <= 0 {
		t.Error("constant input must still give a positive bandwidth")
	}
}
