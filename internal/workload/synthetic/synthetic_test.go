package synthetic_test

import (
	"testing"

	"metadataflow/internal/baseline"
	"metadataflow/internal/cluster"
	"metadataflow/internal/engine"
	"metadataflow/internal/memorymgr"
	"metadataflow/internal/scheduler"
	"metadataflow/internal/workload/synthetic"
)

func smallParams() synthetic.Params {
	p := synthetic.Defaults()
	p.Rows = 400
	p.Partitions = 4
	p.VirtualBytes = 1 << 28
	p.OuterBranches = 3
	p.InnerBranches = 3
	return p
}

func testCluster() *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Workers = 4
	cfg.MemPerWorker = 1 << 30
	return cluster.MustNew(cfg)
}

func TestBuildMDFValidates(t *testing.T) {
	g, err := synthetic.BuildMDF(smallParams())
	if err != nil {
		t.Fatalf("BuildMDF: %v", err)
	}
	scopes, err := g.MatchScopes()
	if err != nil {
		t.Fatalf("MatchScopes: %v", err)
	}
	// One outer scope plus one inner scope per outer branch.
	if want := 1 + 3; len(scopes) != want {
		t.Errorf("scopes = %d, want %d", len(scopes), want)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	p := smallParams()
	p.OuterBranches = 1
	if _, err := synthetic.BuildMDF(p); err == nil {
		t.Error("outer branching factor 1 should be rejected")
	}
	p = smallParams()
	p.OpsPerItem = 0
	if _, err := synthetic.BuildMDF(p); err == nil {
		t.Error("zero ops per item should be rejected")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := synthetic.Generate(smallParams())
	b := synthetic.Generate(smallParams())
	if a.NumRows() != b.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", a.NumRows(), b.NumRows())
	}
	ar, br := a.Rows(), b.Rows()
	for i := range ar {
		if ar[i].(synthetic.Pair) != br[i].(synthetic.Pair) {
			t.Fatalf("row %d differs", i)
		}
	}
	if a.VirtualBytes() != smallParams().VirtualBytes {
		t.Errorf("virtual bytes = %d, want %d", a.VirtualBytes(), smallParams().VirtualBytes)
	}
}

func TestRunMDFEndToEnd(t *testing.T) {
	g, err := synthetic.BuildMDF(smallParams())
	if err != nil {
		t.Fatalf("BuildMDF: %v", err)
	}
	res, err := engine.Execute(g, engine.Options{
		Cluster:     testCluster(),
		Policy:      memorymgr.AMM,
		Scheduler:   scheduler.BAS(nil),
		Incremental: true,
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Output == nil || res.Output.NumRows() == 0 {
		t.Fatal("no output produced")
	}
	if res.Output.NumRows() != 400 {
		t.Errorf("output rows = %d, want 400 (selection forwards one branch)", res.Output.NumRows())
	}
	if res.CompletionTime() <= 0 {
		t.Error("non-positive completion time")
	}
}

func TestExpandMatchesCombinationCount(t *testing.T) {
	p := smallParams()
	g, err := synthetic.BuildMDF(p)
	if err != nil {
		t.Fatalf("BuildMDF: %v", err)
	}
	jobs, err := baseline.ExpandJobs(g)
	if err != nil {
		t.Fatalf("ExpandJobs: %v", err)
	}
	if want := p.OuterBranches * p.InnerBranches; len(jobs) != want {
		t.Fatalf("expanded jobs = %d, want %d", len(jobs), want)
	}
	for i, job := range jobs {
		if err := job.Validate(); err != nil {
			t.Errorf("job %d invalid: %v", i, err)
		}
		if len(job.Explores()) != 0 || len(job.Chooses()) != 0 {
			t.Errorf("job %d still contains explore/choose operators", i)
		}
	}
}

func TestSequentialSlowerThanMDF(t *testing.T) {
	p := smallParams()
	g, err := synthetic.BuildMDF(p)
	if err != nil {
		t.Fatalf("BuildMDF: %v", err)
	}
	jobs, err := baseline.ExpandJobs(g)
	if err != nil {
		t.Fatalf("ExpandJobs: %v", err)
	}
	seq, err := baseline.Sequential(jobs, baseline.Config{
		Cluster: testCluster(), Policy: memorymgr.LRU,
	})
	if err != nil {
		t.Fatalf("Sequential: %v", err)
	}
	mdfRes, err := baseline.SingleJob(g, baseline.Config{
		Cluster: testCluster(), Policy: memorymgr.AMM,
		NewScheduler: func() scheduler.Policy { return scheduler.BAS(nil) },
		Incremental:  true,
	})
	if err != nil {
		t.Fatalf("SingleJob: %v", err)
	}
	if mdfRes.CompletionTime() >= seq.CompletionTime {
		t.Errorf("MDF (%0.1fs) should beat sequential (%0.1fs)",
			mdfRes.CompletionTime(), seq.CompletionTime)
	}
}

func TestParallelFasterThanSequential(t *testing.T) {
	p := smallParams()
	g, err := synthetic.BuildMDF(p)
	if err != nil {
		t.Fatalf("BuildMDF: %v", err)
	}
	jobs, err := baseline.ExpandJobs(g)
	if err != nil {
		t.Fatalf("ExpandJobs: %v", err)
	}
	seq, err := baseline.Sequential(jobs, baseline.Config{Cluster: testCluster(), Policy: memorymgr.LRU})
	if err != nil {
		t.Fatalf("Sequential: %v", err)
	}
	par, err := baseline.Parallel(jobs, 4, baseline.Config{Cluster: testCluster(), Policy: memorymgr.LRU})
	if err != nil {
		t.Fatalf("Parallel: %v", err)
	}
	if par.CompletionTime >= seq.CompletionTime {
		t.Errorf("4-parallel (%0.1fs) should beat sequential (%0.1fs)",
			par.CompletionTime, seq.CompletionTime)
	}
}
