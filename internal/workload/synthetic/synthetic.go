// Package synthetic implements the synthetic job of §6 (Fig. 23): a
// dataflow over string/integer pairs with two nested explore operators whose
// branches apply an algebraic operation to every tuple. The branching
// factors and the per-item processing cost are configurable, which makes the
// job the workhorse of the scalability, topology and resource experiments
// (Figs. 9–18).
package synthetic

import (
	"fmt"

	"metadataflow/internal/dataset"
	"metadataflow/internal/graph"
	"metadataflow/internal/mdf"
	"metadataflow/internal/stats"
)

// Pair is one string/integer tuple.
type Pair struct {
	Key string
	Val int64
}

// Params configures the synthetic MDF.
type Params struct {
	// Rows is the number of pairs in the input.
	Rows int
	// Partitions is the number of dataset partitions (usually the worker
	// count).
	Partitions int
	// VirtualBytes is the accounted input size in bytes (the "gigabytes
	// per worker" of §6.2); it is decoupled from Rows.
	VirtualBytes int64
	// OuterBranches and InnerBranches are |B1| and |B2|.
	OuterBranches int
	InnerBranches int
	// OpsPerItem tunes the per-tuple compute cost (§6: "the algebraic
	// operation is performed a configurable number of times per data
	// item").
	OpsPerItem int
	// InnerSizeScale scales the accounted size of inner-branch outputs
	// relative to their input (1.0 preserves it); values < 1 model
	// aggregating second-level operators.
	InnerSizeScale float64
	// Seed drives the input generator.
	Seed int64
}

// Defaults returns the configuration used by the resource experiments:
// |B1| = |B2| = 5 (§6.4).
func Defaults() Params {
	return Params{
		Rows:           4000,
		Partitions:     8,
		VirtualBytes:   16 << 30,
		OuterBranches:  5,
		InnerBranches:  5,
		OpsPerItem:     4,
		InnerSizeScale: 1.0,
		Seed:           1,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.Rows < 1 || p.Partitions < 1 {
		return fmt.Errorf("synthetic: need rows and partitions >= 1")
	}
	if p.OuterBranches < 2 || p.InnerBranches < 2 {
		return fmt.Errorf("synthetic: branching factors must be >= 2, got %d and %d",
			p.OuterBranches, p.InnerBranches)
	}
	if p.OpsPerItem < 1 {
		return fmt.Errorf("synthetic: ops per item must be >= 1")
	}
	if p.InnerSizeScale <= 0 || p.InnerSizeScale > 1 {
		return fmt.Errorf("synthetic: inner size scale %g out of (0, 1]", p.InnerSizeScale)
	}
	return nil
}

// Generate produces the input dataset of random string/integer pairs.
func Generate(p Params) *dataset.Dataset {
	rng := stats.NewRNG(p.Seed)
	rows := make([]dataset.Row, p.Rows)
	for i := range rows {
		rows[i] = Pair{
			Key: fmt.Sprintf("k%08x", rng.Intn(1<<30)),
			Val: int64(rng.Intn(1 << 20)),
		}
	}
	d := dataset.FromRows("pairs", rows, p.Partitions, 1)
	d.SetVirtualBytes(p.VirtualBytes)
	return d
}

// mathOp applies the branch's algebraic operation OpsPerItem times: an
// affine update modulo a large prime, parameterised by the explorable w.
func mathOp(w int64, opsPerItem int) func(dataset.Row) dataset.Row {
	const mod = 1_000_000_007
	return func(r dataset.Row) dataset.Row {
		p := r.(Pair)
		v := p.Val
		for i := 0; i < opsPerItem; i++ {
			v = (v*w + int64(i) + 1) % mod
		}
		return Pair{Key: p.Key, Val: v}
	}
}

// sumEvaluator implements int_value from Fig. 23: the mean tuple value of a
// branch result.
func sumEvaluator() mdf.Evaluator {
	return mdf.Evaluator{
		Name: "int_value",
		Fn: func(d *dataset.Dataset) float64 {
			var sum float64
			n := 0
			for _, part := range d.Parts {
				for _, r := range part.Rows {
					sum += float64(r.(Pair).Val)
					n++
				}
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		},
		CostPerMB: 0.0005,
	}
}

// branchValues returns the explorable values for n branches, following the
// paper's w = 10, 100, 1000, ... progression extended as needed.
func branchValues(n int) []mdf.BranchSpec {
	specs := make([]mdf.BranchSpec, n)
	w := int64(10)
	for i := range specs {
		specs[i] = mdf.BranchSpec{Label: fmt.Sprintf("w=%d", w), Hint: float64(w)}
		if w < 1_000_000_000 {
			w *= 10
		} else {
			w += 7
		}
	}
	return specs
}

// costPerMB converts the per-item op count into the virtual compute cost of
// one accounted megabyte.
func costPerMB(opsPerItem int) float64 { return 0.002 * float64(opsPerItem) }

// BuildMDF constructs the synthetic MDF of Fig. 23: two nested explores
// choosing the maximum mean tuple value.
func BuildMDF(p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	input := Generate(p)
	b := mdf.NewBuilder()
	cost := costPerMB(p.OpsPerItem)
	src := b.Source("src", mdf.SourceFromDataset(input), 0.0002)
	outer := src.Explore("B1", branchValues(p.OuterBranches), mdf.NewChooser(sumEvaluator(), mdf.Max()),
		func(start *mdf.Node, spec mdf.BranchSpec) *mdf.Node {
			w1 := int64(spec.Hint)
			first := start.Then("op("+spec.Label+")",
				mdf.MapRows("first_op", 1.0, mathOp(w1, p.OpsPerItem)), cost)
			return first.Explore("B2", branchValues(p.InnerBranches),
				mdf.NewChooser(sumEvaluator(), mdf.Max()),
				func(inner *mdf.Node, ispec mdf.BranchSpec) *mdf.Node {
					w2 := int64(ispec.Hint)
					return inner.Then("op2("+ispec.Label+")",
						mdf.MapRows("second_op", p.InnerSizeScale, mathOp(w2, p.OpsPerItem)), cost)
				})
		})
	outer.Then("sink", mdf.Identity("results"), 0.0001)
	return b.Build()
}
