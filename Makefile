GO ?= go

.PHONY: all build test vet lint race experiments-quick ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs mdflint, the repo's determinism static analyzer (see
# ARCHITECTURE.md "Determinism rules"). It exits nonzero on any finding.
lint:
	$(GO) run ./cmd/mdflint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick-mode regeneration of the resilience experiments: stragglers,
# recovery, and the fault-rate reliability sweep.
experiments-quick: build
	$(GO) run ./cmd/mdfbench -exp stragglers -quick -seeds 1 -csv
	$(GO) run ./cmd/mdfbench -exp recovery -quick -seeds 1 -csv
	$(GO) run ./cmd/mdfbench -exp reliability -quick -seeds 1 -csv

# ci is the gate a change must pass before merging.
ci: vet lint build race experiments-quick

clean:
	$(GO) clean ./...
