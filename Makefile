GO ?= go

.PHONY: all help build test vet lint specvet race race-short experiments-quick fuzz-short chaos-short chaos crash-short serve-short bench-baseline bench-trajectory ci clean

all: build

# help lists the targets worth knowing about.
help:
	@echo "mdf targets:"
	@echo "  build             compile everything"
	@echo "  test              go test ./..."
	@echo "  vet               go vet ./..."
	@echo "  lint              mdflint: determinism, unit and concurrency rules (exits nonzero on findings)"
	@echo "  specvet           mdfplan: canonical-form + plan-verifier gate on every committed spec"
	@echo "  race              full test suite under the race detector"
	@echo "  race-short        focused -race -short -count=1 gate on the concurrent packages (service, engine, scheduler)"
	@echo "  experiments-quick regenerate the resilience experiment CSVs in quick mode"
	@echo "  fuzz-short        brief fuzz runs of the JSON parsers"
	@echo "  chaos-short       deterministic 50-trial chaos sweep, run twice and compared"
	@echo "  chaos             long randomized chaos sweep (CHAOS_SEED, CHAOS_TRIALS)"
	@echo "  crash-short       kill-and-restart sweep at every journal record boundary, run twice and compared"
	@echo "  serve-short       service-layer tests (admission, quotas, drain, HTTP)"
	@echo "  bench-baseline    regenerate BENCH_*.json and fail on byte drift"
	@echo "  bench-trajectory  regenerate BENCH_*.json and fail if any series regresses past MDFSTAT_THRESHOLD (mdfstat)"
	@echo "  ci                the merge gate: vet lint specvet build race race-short chaos-short crash-short experiments-quick serve-short bench-trajectory bench-baseline"

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs mdflint, the repo's determinism, unit-discipline and
# concurrency-safety static analyzer (see ARCHITECTURE.md "Determinism
# rules", "Unit types and semantic rules" and "Concurrency rules"). It
# exits nonzero on any finding; -stale-allows additionally audits
# suppression comments.
lint:
	$(GO) run ./cmd/mdflint -stale-allows ./...

# specvet runs mdfplan, the plan-level verifier (see ARCHITECTURE.md "Spec
# canonical form and plan vetting"), over every committed spec document:
# examples and the canonical golden fixtures must be in canonical form,
# pass the full rule battery, and carry no stale allow entries. The seeded
# defect fixtures under internal/plan/testdata are deliberately excluded —
# they exist to be condemned.
specvet: build
	$(GO) run ./cmd/mdfplan -canonical -stale-allows \
		examples/specs/*.json internal/spec/testdata/canonical/*.json

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-short is the focused race gate on the packages with real
# concurrency: the service (step loop vs HTTP surface), the engine
# (context cancellation) and the scheduler. -count=1 defeats the test
# cache so the race detector actually runs on every invocation. Part of ci.
race-short:
	$(GO) test -race -short -count=1 ./internal/service ./internal/engine ./internal/scheduler

# Quick-mode regeneration of the resilience experiments: stragglers,
# recovery, and the fault-rate reliability sweep.
experiments-quick: build
	$(GO) run ./cmd/mdfbench -exp stragglers -quick -seeds 1 -csv
	$(GO) run ./cmd/mdfbench -exp recovery -quick -seeds 1 -csv
	$(GO) run ./cmd/mdfbench -exp reliability -quick -seeds 1 -csv

# fuzz-short runs the JSON-parser fuzz targets briefly on top of their
# checked-in corpora (testdata/fuzz); longer runs use -fuzztime directly.
fuzz-short:
	$(GO) test ./internal/spec -run='^$$' -fuzz=FuzzParse -fuzztime=5s
	$(GO) test ./internal/spec -run='^$$' -fuzz=FuzzCanonical -fuzztime=5s
	$(GO) test ./internal/faults -run='^$$' -fuzz=FuzzParse -fuzztime=5s
	$(GO) test ./internal/journal -run='^$$' -fuzz=FuzzJournalReplay -fuzztime=5s

# chaos-short is the deterministic chaos gate: a fixed-seed 50-trial sweep
# (random cluster + workload + fault plan per trial, golden-vs-faulted
# oracles; see ARCHITECTURE.md "Chaos testing") run twice and compared
# byte-for-byte, proving both that all oracles pass and that the harness and
# the engine under it are deterministic. Part of ci.
chaos-short: build
	$(GO) run ./cmd/mdfchaos -trials 50 -seed 1 -repro .chaos-repro.json > .chaos-short-a.log
	$(GO) run ./cmd/mdfchaos -trials 50 -seed 1 -repro .chaos-repro.json > .chaos-short-b.log
	cmp .chaos-short-a.log .chaos-short-b.log
	@tail -n 1 .chaos-short-a.log
	@rm -f .chaos-short-a.log .chaos-short-b.log

# chaos is the long randomized sweep for nightly runs; vary the seed to
# explore new fault schedules: CHAOS_SEED=$$RANDOM make chaos. A violation
# leaves a shrunk chaos-repro.json behind for replay with
# `mdfchaos -replay` or `mdfrun -faults`.
CHAOS_SEED ?= 1
CHAOS_TRIALS ?= 1000
chaos: build
	$(GO) run ./cmd/mdfchaos -trials $(CHAOS_TRIALS) -seed $(CHAOS_SEED) -repro chaos-repro.json

# crash-short is the crash-consistency gate: a fixed-seed sweep that kills
# and restarts a durable mdfserve at every journal record boundary — with
# seeded torn tails, journal bit flips and checkpoint corruption — and
# asserts each recovered run matches the uninterrupted golden run exactly
# (see ARCHITECTURE.md "Durability and crash recovery"). The sweep runs
# twice into separate state roots; the logs must compare byte-for-byte and
# the golden journals of the two runs must be identical, proving the
# durable path itself is deterministic. Part of ci.
crash-short: build
	rm -rf .crash-a .crash-b
	$(GO) run ./cmd/mdfchaos -crash -trials 50 -seed 1 -state-root .crash-a > .crash-short-a.log
	$(GO) run ./cmd/mdfchaos -crash -trials 50 -seed 1 -state-root .crash-b > .crash-short-b.log
	cmp .crash-short-a.log .crash-short-b.log
	@for d in .crash-a/trial-*/golden/journal; do \
		diff -r $$d .crash-b/$${d#.crash-a/} || exit 1; \
	done
	@tail -n 1 .crash-short-a.log
	@rm -rf .crash-a .crash-b .crash-short-a.log .crash-short-b.log

# serve-short exercises the mdfserve service layer: admission control,
# quotas, deadlines, quarantine, drain/checkpoint and the HTTP surface
# (see ARCHITECTURE.md "Service layer"). Part of ci.
serve-short:
	$(GO) test ./internal/service -count=1

# bench-baseline regenerates every committed BENCH_<exp>.json baseline in
# quick mode and fails if any bytes drift: a performance- or
# determinism-affecting change must regenerate the baselines in the same
# commit. Part of ci.
bench-baseline: build
	rm -rf .bench-prev && mkdir .bench-prev && cp BENCH_*.json .bench-prev/
	$(GO) run ./cmd/mdfbench -exp all -quick -seeds 1 -json
	@for f in BENCH_*.json; do cmp $$f .bench-prev/$$f || exit 1; done
	@rm -rf .bench-prev

# bench-trajectory is the performance-trajectory gate: regenerate every
# experiment in quick mode and diff each artifact against the committed
# baseline with mdfstat, failing when any series regresses past the
# threshold (default 5%). Unlike bench-baseline's byte compare this gate
# names the series that moved and tolerates improvements, so it stays
# useful while baselines are being re-rolled: run it before bench-baseline
# to see *what* regressed, not just *that* bytes changed. Part of ci.
MDFSTAT_THRESHOLD ?= 5
bench-trajectory: build
	rm -rf .bench-traj && mkdir .bench-traj && cp BENCH_*.json .bench-traj/
	$(GO) run ./cmd/mdfbench -exp all -quick -seeds 1 -json
	@for f in BENCH_*.json; do \
		$(GO) run ./cmd/mdfstat -threshold $(MDFSTAT_THRESHOLD) .bench-traj/$$f $$f || exit 1; \
	done
	@rm -rf .bench-traj

# ci is the gate a change must pass before merging.
ci: vet lint specvet build race race-short chaos-short crash-short experiments-quick serve-short bench-trajectory bench-baseline

clean:
	$(GO) clean ./...
