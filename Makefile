GO ?= go

.PHONY: all build test vet lint race experiments-quick fuzz-short ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs mdflint, the repo's determinism and unit-discipline static
# analyzer (see ARCHITECTURE.md "Determinism rules" and "Unit types and
# semantic rules"). It exits nonzero on any finding.
lint:
	$(GO) run ./cmd/mdflint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick-mode regeneration of the resilience experiments: stragglers,
# recovery, and the fault-rate reliability sweep.
experiments-quick: build
	$(GO) run ./cmd/mdfbench -exp stragglers -quick -seeds 1 -csv
	$(GO) run ./cmd/mdfbench -exp recovery -quick -seeds 1 -csv
	$(GO) run ./cmd/mdfbench -exp reliability -quick -seeds 1 -csv

# fuzz-short runs the JSON-parser fuzz targets briefly on top of their
# checked-in corpora (testdata/fuzz); longer runs use -fuzztime directly.
fuzz-short:
	$(GO) test ./internal/spec -run='^$$' -fuzz=FuzzParse -fuzztime=5s
	$(GO) test ./internal/faults -run='^$$' -fuzz=FuzzParse -fuzztime=5s

# ci is the gate a change must pass before merging.
ci: vet lint build race experiments-quick

clean:
	$(GO) clean ./...
